// LZ77 + canonical Huffman compressor (Xz/Brotli/Zstd class proxy).
//
// A deflate-style design with a larger window: hash-chain match finding over
// a 1 MiB window, optional lazy matching, and two canonical Huffman codes —
// one over literals/lengths (0..255 literals, 256 end-of-block, 257..285
// length buckets with extra bits) and one over 30 distance buckets with
// extra bits. The whole input is one block; code lengths are stored raw in
// the header (6 bits each), which is negligible at these block sizes.
//
// Effort levels trade match-finder depth and lazy matching for speed,
// reproducing the slow+strong (Xz/Brotli) and medium (Zstd) anchors of the
// paper's general-purpose family.

#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "succinct/bit_stream.hpp"

namespace neats {

namespace lzhuf_internal {

// Deflate-style length buckets: base values and extra bits for lengths 3..258.
inline constexpr int kLenBase[] = {3,  4,  5,  6,  7,  8,  9,  10, 11,  13,
                                   15, 17, 19, 23, 27, 31, 35, 43, 51,  59,
                                   67, 83, 99, 115, 131, 163, 195, 227, 258};
inline constexpr int kLenExtra[] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2,
                                    2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};

// Distance buckets for distances 1..1048576 (deflate's 30 plus 10 more for
// the larger window).
inline constexpr int kNumDistSyms = 40;

inline int LengthSymbol(int len) {
  int s = 0;
  while (s + 1 < 29 && kLenBase[s + 1] <= len) ++s;
  return s;
}

inline int DistanceSymbol(size_t dist, int* extra_bits, uint64_t* extra_val) {
  // Bucket d into [2^k, 2^(k+1)) pairs like deflate: symbols 0..3 are exact
  // distances 1..4, then two buckets per power of two.
  if (dist <= 4) {
    *extra_bits = 0;
    *extra_val = 0;
    return static_cast<int>(dist) - 1;
  }
  int log = 63 - CountLeadingZeros(static_cast<uint64_t>(dist - 1));
  size_t base = size_t{1} << log;
  int half = (dist - 1 - base) >= (base >> 1) ? 1 : 0;
  int sym = 4 + 2 * (log - 2) + half;
  size_t bucket_base = base + 1 + static_cast<size_t>(half) * (base >> 1);
  *extra_bits = log - 1;
  *extra_val = dist - bucket_base;
  return sym;
}

inline size_t DistanceBase(int sym, int* extra_bits) {
  if (sym < 4) {
    *extra_bits = 0;
    return static_cast<size_t>(sym) + 1;
  }
  int log = (sym - 4) / 2 + 2;
  int half = (sym - 4) % 2;
  size_t base = size_t{1} << log;
  *extra_bits = log - 1;
  return base + 1 + static_cast<size_t>(half) * (base >> 1);
}

/// Builds Huffman code lengths from frequencies (no depth limit; canonical
/// codes are assigned separately). Unused symbols get length 0.
inline std::vector<int> HuffmanLengths(const std::vector<uint64_t>& freq) {
  struct Node {
    uint64_t weight;
    int left, right;  // -1 for leaves
    int symbol;
  };
  std::vector<Node> nodes;
  std::vector<int> heap;  // indices into nodes, min-heap by weight
  auto cmp = [&](int a, int b) { return nodes[a].weight > nodes[b].weight; };
  for (size_t s = 0; s < freq.size(); ++s) {
    if (freq[s] > 0) {
      nodes.push_back({freq[s], -1, -1, static_cast<int>(s)});
      heap.push_back(static_cast<int>(nodes.size()) - 1);
    }
  }
  std::vector<int> lengths(freq.size(), 0);
  if (heap.empty()) return lengths;
  if (heap.size() == 1) {
    lengths[static_cast<size_t>(nodes[heap[0]].symbol)] = 1;
    return lengths;
  }
  std::make_heap(heap.begin(), heap.end(), cmp);
  while (heap.size() > 1) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    int a = heap.back();
    heap.pop_back();
    std::pop_heap(heap.begin(), heap.end(), cmp);
    int b = heap.back();
    heap.pop_back();
    nodes.push_back({nodes[a].weight + nodes[b].weight, a, b, -1});
    heap.push_back(static_cast<int>(nodes.size()) - 1);
    std::push_heap(heap.begin(), heap.end(), cmp);
  }
  // Depth-first traversal to assign lengths.
  std::vector<std::pair<int, int>> stack = {{heap[0], 0}};
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<size_t>(idx)];
    if (node.left < 0) {
      lengths[static_cast<size_t>(node.symbol)] = std::max(1, depth);
    } else {
      stack.push_back({node.left, depth + 1});
      stack.push_back({node.right, depth + 1});
    }
  }
  return lengths;
}

/// Reverses the low `len` bits of `v` — the writer appends LSB-first while
/// prefix codes must hit the stream MSB-first.
inline uint64_t ReverseLowBits(uint64_t v, int len) {
  uint64_t r = 0;
  for (int i = 0; i < len; ++i) {
    r = (r << 1) | (v & 1);
    v >>= 1;
  }
  return r;
}

/// Canonical code assignment: codes sorted by (length, symbol).
inline std::vector<uint64_t> CanonicalCodes(const std::vector<int>& lengths) {
  int max_len = 0;
  for (int l : lengths) max_len = std::max(max_len, l);
  std::vector<int> count(static_cast<size_t>(max_len) + 1, 0);
  for (int l : lengths) {
    if (l > 0) ++count[static_cast<size_t>(l)];
  }
  std::vector<uint64_t> next(static_cast<size_t>(max_len) + 1, 0);
  uint64_t code = 0;
  for (int l = 1; l <= max_len; ++l) {
    code = (code + static_cast<uint64_t>(count[static_cast<size_t>(l - 1)]))
           << 1;
    next[static_cast<size_t>(l)] = code;
  }
  std::vector<uint64_t> codes(lengths.size(), 0);
  for (size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > 0) codes[s] = next[static_cast<size_t>(lengths[s])]++;
  }
  return codes;
}

/// Canonical Huffman decoder (first-code/offset per length).
class HuffmanDecoder {
 public:
  explicit HuffmanDecoder(const std::vector<int>& lengths) {
    max_len_ = 0;
    for (int l : lengths) max_len_ = std::max(max_len_, l);
    first_code_.assign(static_cast<size_t>(max_len_) + 2, 0);
    first_index_.assign(static_cast<size_t>(max_len_) + 2, 0);
    std::vector<int> count(static_cast<size_t>(max_len_) + 1, 0);
    for (int l : lengths) {
      if (l > 0) ++count[static_cast<size_t>(l)];
    }
    symbols_.reserve(lengths.size());
    uint64_t code = 0;
    size_t index = 0;
    for (int l = 1; l <= max_len_; ++l) {
      code = (code + static_cast<uint64_t>(count[static_cast<size_t>(l - 1)]))
             << 1;
      first_code_[static_cast<size_t>(l)] = code;
      first_index_[static_cast<size_t>(l)] = index;
      for (size_t s = 0; s < lengths.size(); ++s) {
        if (lengths[s] == l) {
          symbols_.push_back(static_cast<int>(s));
          ++index;
        }
      }
    }
  }

  int Decode(BitReader* reader) const {
    uint64_t code = 0;
    for (int l = 1; l <= max_len_; ++l) {
      code = (code << 1) | (reader->ReadBit() ? 1 : 0);
      uint64_t first = first_code_[static_cast<size_t>(l)];
      uint64_t range = (l < max_len_)
                           ? first_code_[static_cast<size_t>(l + 1)] >> 1
                           : first + symbols_.size() -
                                 first_index_[static_cast<size_t>(l)];
      // Count of codes at this length:
      size_t cnt = (l < max_len_)
                       ? first_index_[static_cast<size_t>(l + 1)] -
                             first_index_[static_cast<size_t>(l)]
                       : symbols_.size() - first_index_[static_cast<size_t>(l)];
      (void)range;
      if (cnt > 0 && code >= first && code < first + cnt) {
        return symbols_[first_index_[static_cast<size_t>(l)] +
                        static_cast<size_t>(code - first)];
      }
    }
    NEATS_REQUIRE(false, "corrupt huffman stream");
    return -1;
  }

 private:
  int max_len_ = 0;
  std::vector<uint64_t> first_code_;
  std::vector<size_t> first_index_;
  std::vector<int> symbols_;
};

}  // namespace lzhuf_internal

/// Match-finder effort knobs for LzHuf.
struct LzHufOptions {
  int chain_depth = 32;  // match-finder effort
  bool lazy = false;     // one-step lazy matching
};

/// LZ77 + Huffman codec over raw bytes.
class LzHuf {
 public:
  using Options = LzHufOptions;

  /// Preset mirroring the slow/strong general-purpose compressors.
  static Options StrongOptions() { return {256, true}; }
  /// Preset mirroring the balanced general-purpose compressors.
  static Options FastOptions() { return {16, false}; }

  static std::vector<uint8_t> CompressBytes(std::span<const uint8_t> in,
                                            const Options& options = {}) {
    using namespace lzhuf_internal;
    // --- Tokenize. ---
    struct Token {
      bool is_match;
      uint8_t literal;
      int length;
      size_t distance;
    };
    std::vector<Token> tokens;
    tokens.reserve(in.size() / 3 + 8);

    const size_t n = in.size();
    std::vector<uint32_t> head(1u << kHashBits, kNoPos);
    std::vector<uint32_t> prev(n, kNoPos);

    auto find_match = [&](size_t pos, int* best_len, size_t* best_dist) {
      *best_len = 0;
      if (pos + kMinMatch > n) return;
      uint32_t h = Hash(in.data() + pos);
      uint32_t cand = head[h];
      int depth = options.chain_depth;
      size_t limit = std::min(n - pos, kMaxMatchLen);
      while (cand != kNoPos && depth-- > 0 && pos - cand <= kWindow) {
        size_t len = 0;
        while (len < limit && in[cand + len] == in[pos + len]) ++len;
        if (static_cast<int>(len) > *best_len) {
          *best_len = static_cast<int>(len);
          *best_dist = pos - cand;
          if (len == limit) break;
        }
        cand = prev[cand];
      }
    };
    auto insert = [&](size_t pos) {
      if (pos + kMinMatch > n) return;
      uint32_t h = Hash(in.data() + pos);
      if (head[h] == static_cast<uint32_t>(pos)) return;  // no self-loops
      prev[pos] = head[h];
      head[h] = static_cast<uint32_t>(pos);
    };

    size_t pos = 0;
    while (pos < n) {
      int len;
      size_t dist = 0;
      find_match(pos, &len, &dist);
      if (len >= static_cast<int>(kMinMatch)) {
        if (options.lazy && pos + 1 < n) {
          int len2;
          size_t dist2 = 0;
          insert(pos);
          find_match(pos + 1, &len2, &dist2);
          if (len2 > len + 1) {
            tokens.push_back({false, in[pos], 0, 0});
            ++pos;
            continue;  // the better match will be taken next round
          }
          tokens.push_back({true, 0, len, dist});
          for (size_t i = pos + 1; i < pos + static_cast<size_t>(len); ++i) {
            insert(i);
          }
          pos += static_cast<size_t>(len);
          continue;
        }
        tokens.push_back({true, 0, len, dist});
        for (size_t i = pos; i < pos + static_cast<size_t>(len); ++i) {
          insert(i);
        }
        pos += static_cast<size_t>(len);
      } else {
        tokens.push_back({false, in[pos], 0, 0});
        insert(pos);
        ++pos;
      }
    }

    // --- Frequencies and Huffman codes. ---
    std::vector<uint64_t> lit_freq(kNumLitLenSyms, 0);
    std::vector<uint64_t> dist_freq(kNumDistSyms, 0);
    lit_freq[256] = 1;  // EOB
    for (const Token& t : tokens) {
      if (t.is_match) {
        ++lit_freq[static_cast<size_t>(257 + LengthSymbol(t.length))];
        int eb;
        uint64_t ev;
        ++dist_freq[static_cast<size_t>(DistanceSymbol(t.distance, &eb, &ev))];
      } else {
        ++lit_freq[t.literal];
      }
    }
    std::vector<int> lit_lengths = HuffmanLengths(lit_freq);
    std::vector<int> dist_lengths = HuffmanLengths(dist_freq);
    std::vector<uint64_t> lit_codes = CanonicalCodes(lit_lengths);
    std::vector<uint64_t> dist_codes = CanonicalCodes(dist_lengths);

    // --- Emit: header (original size + code lengths), then the stream. ---
    BitWriter writer;
    writer.Append(n, 64);
    for (int l : lit_lengths) writer.Append(static_cast<uint64_t>(l), 6);
    for (int l : dist_lengths) writer.Append(static_cast<uint64_t>(l), 6);
    auto emit_code = [&writer](uint64_t code, int len) {
      writer.Append(ReverseLowBits(code, len), len);
    };
    for (const Token& t : tokens) {
      if (t.is_match) {
        int ls = LengthSymbol(t.length);
        size_t sym = static_cast<size_t>(257 + ls);
        emit_code(lit_codes[sym], lit_lengths[sym]);
        writer.Append(static_cast<uint64_t>(t.length - kLenBase[ls]),
                      kLenExtra[ls]);
        int eb;
        uint64_t ev;
        int ds = DistanceSymbol(t.distance, &eb, &ev);
        emit_code(dist_codes[static_cast<size_t>(ds)],
                  dist_lengths[static_cast<size_t>(ds)]);
        writer.Append(ev, eb);
      } else {
        emit_code(lit_codes[t.literal], lit_lengths[t.literal]);
      }
    }
    emit_code(lit_codes[256], lit_lengths[256]);  // EOB

    // Pack to bytes.
    size_t bits = writer.bit_size();
    std::vector<uint64_t> words = writer.TakeWords();
    std::vector<uint8_t> out(8 + CeilDiv(bits, 8));
    std::memcpy(out.data(), &bits, 8);
    std::memcpy(out.data() + 8, words.data(), out.size() - 8);
    return out;
  }

  static void DecompressBytes(std::span<const uint8_t> in,
                              std::span<uint8_t> out) {
    using namespace lzhuf_internal;
    size_t bits;
    std::memcpy(&bits, in.data(), 8);
    std::vector<uint64_t> words(CeilDiv(bits, 64));
    std::memcpy(words.data(), in.data() + 8, in.size() - 8);
    BitReader reader(words.data(), bits);

    size_t n = reader.Read(64);
    NEATS_REQUIRE(n == out.size(), "output size mismatch");
    std::vector<int> lit_lengths(kNumLitLenSyms), dist_lengths(kNumDistSyms);
    for (auto& l : lit_lengths) l = static_cast<int>(reader.Read(6));
    for (auto& l : dist_lengths) l = static_cast<int>(reader.Read(6));
    HuffmanDecoder lit_dec(lit_lengths);
    HuffmanDecoder dist_dec(dist_lengths);

    size_t op = 0;
    while (true) {
      int sym = lit_dec.Decode(&reader);
      if (sym == 256) break;
      if (sym < 256) {
        out[op++] = static_cast<uint8_t>(sym);
        continue;
      }
      int ls = sym - 257;
      size_t len = static_cast<size_t>(kLenBase[ls]) +
                   reader.Read(kLenExtra[ls]);
      int ds = dist_dec.Decode(&reader);
      int eb;
      size_t dist = DistanceBase(ds, &eb) + reader.Read(eb);
      for (size_t i = 0; i < len; ++i, ++op) {
        out[op] = out[op - dist];
      }
    }
    NEATS_REQUIRE(op == out.size(), "corrupt lzhuf stream");
  }

 private:
  static constexpr int kHashBits = 17;
  static constexpr size_t kMinMatch = 4;
  static constexpr size_t kMaxMatchLen = 258;
  static constexpr size_t kWindow = 1u << 20;
  static constexpr uint32_t kNoPos = UINT32_MAX;
  static constexpr size_t kNumLitLenSyms = 286;

  static uint32_t Hash(const uint8_t* p) {
    uint32_t v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> (32 - kHashBits);
  }
};

}  // namespace neats
