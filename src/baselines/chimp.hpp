// Chimp and Chimp128 floating-point compression (Liakos et al., VLDB 2022).
//
// Chimp refines Gorilla with a 2-bit flag per value and a rounded
// leading-zero class (3 bits over {0,8,12,16,18,20,22,24}):
//   00 — XOR with the previous value is zero
//   01 — trailing zeros > 6: 3b lz class + 6b significant length + bits
//   10 — tz <= 6, lz class equal to the previous one: (64 - lz) bits
//   11 — tz <= 6, new lz class: 3b class + (64 - lz) bits
//
// Chimp128 additionally searches the 128 most recent values for the
// reference producing the most trailing zeros, spending log2(128) = 7 bits
// on the reference index in the '0x' cases.

#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "succinct/bit_stream.hpp"
#include "succinct/storage.hpp"

namespace neats {

namespace chimp_internal {

inline constexpr int kLeadingRound[] = {0,  0,  0,  0,  0,  0,  0,  0,  8,  8,
                                        8,  8,  12, 12, 12, 12, 16, 16, 18, 18,
                                        20, 20, 22, 22, 24, 24, 24, 24, 24, 24,
                                        24, 24, 24, 24, 24, 24, 24, 24, 24, 24,
                                        24, 24, 24, 24, 24, 24, 24, 24, 24, 24,
                                        24, 24, 24, 24, 24, 24, 24, 24, 24, 24,
                                        24, 24, 24, 24, 24};

inline constexpr int kLeadingClass[] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2,
                                        2, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7,
                                        7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7,
                                        7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7,
                                        7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7};

inline constexpr int kClassToLeading[] = {0, 8, 12, 16, 18, 20, 22, 24};

}  // namespace chimp_internal

/// Chimp-compressed sequence of doubles.
class Chimp {
 public:
  Chimp() = default;

  static Chimp Compress(std::span<const double> values) {
    using namespace chimp_internal;
    Chimp out;
    out.n_ = values.size();
    if (values.empty()) return out;
    BitWriter writer;
    uint64_t prev = std::bit_cast<uint64_t>(values[0]);
    writer.Append(prev, 64);
    int prev_class = -1;
    for (size_t i = 1; i < values.size(); ++i) {
      uint64_t cur = std::bit_cast<uint64_t>(values[i]);
      uint64_t x = cur ^ prev;
      prev = cur;
      if (x == 0) {
        writer.Append(0b00, 2);
        prev_class = -1;
        continue;
      }
      int lz_exact = CountLeadingZeros(x);
      int cls = kLeadingClass[lz_exact];
      int lz = kClassToLeading[cls];
      int tz = CountTrailingZeros(x);
      if (tz > 6) {
        int sig = 64 - lz - tz;
        writer.Append(0b01, 2);
        writer.Append(static_cast<uint64_t>(cls), 3);
        writer.Append(static_cast<uint64_t>(sig), 6);
        writer.Append(x >> tz, sig);
        prev_class = -1;
      } else if (cls == prev_class) {
        writer.Append(0b10, 2);
        writer.Append(x, 64 - lz);
      } else {
        writer.Append(0b11, 2);
        writer.Append(static_cast<uint64_t>(cls), 3);
        writer.Append(x, 64 - lz);
        prev_class = cls;
      }
    }
    out.bits_ = writer.bit_size();
    out.words_ = writer.TakeWords();
    return out;
  }

  void Decompress(std::vector<double>* out) const {
    out->resize(n_);
    DecompressSlice(0, n_, nullptr, 0, out->data());
  }

  /// Resumable decoder state captured right before one value's token (see
  /// Gorilla::SkipState). Chimp's inter-token state is (prev, prev_lz); tz
  /// exists only so the struct shape matches Gorilla's for the shared
  /// skip-index serialization in XorSeriesCodec, and is always 0.
  struct SkipState {
    uint64_t bit_pos = 0;
    uint64_t prev = 0;
    int32_t lz = 0;
    int32_t tz = 0;
  };

  /// Resumable forward decoder: `i` is the index of the next value Next()
  /// yields (see Gorilla::Cursor; `lz` holds Chimp's prev_lz and the tz
  /// slot does not exist because Chimp carries none between tokens).
  struct Cursor {
    BitReader reader;
    uint64_t prev = 0;
    int lz = 0;
    size_t i = 0;
  };

  /// A cursor positioned before value 0.
  Cursor Head() const { return Cursor{BitReader(words_.data(), bits_)}; }

  /// Repositions the cursor at `cp`, the state recorded before value `at`
  /// (at >= 1). The state must come from BuildSkipIndex or pass
  /// CheckSkipState.
  void Seek(Cursor& c, const SkipState& cp, size_t at) const {
    c.reader.Seek(cp.bit_pos);
    c.prev = cp.prev;
    c.lz = cp.lz;
    c.i = at;
  }

  /// Decodes and returns value `c.i`, advancing the cursor by one.
  double Next(Cursor& c) const {
    if (c.i == 0) {
      c.prev = c.reader.Read(64);
    } else {
      Step(c.reader, c.prev, c.lz);
    }
    ++c.i;
    return std::bit_cast<double>(c.prev);
  }

  /// Decodes values [from, from + count) into out. `cp` is the SkipState
  /// recorded before value `cp_at` was decoded (cp_at <= from), or null to
  /// start from the head of the stream. States from a serialized blob must
  /// pass CheckSkipState first — a forged state may decode garbage (all a
  /// corrupt payload is entitled to) but never reads out of bounds.
  void DecompressSlice(size_t from, size_t count, const SkipState* cp,
                       size_t cp_at, double* out) const {
    if (count == 0) return;
    NEATS_DCHECK(from + count <= n_);
    Cursor c = Head();
    if (cp != nullptr) {
      NEATS_DCHECK(cp_at >= 1 && cp_at <= from);
      Seek(c, *cp, cp_at);
    }
    while (c.i < from) (void)Next(c);
    for (size_t j = 0; j < count; ++j) out[j] = Next(c);
  }

  /// Records the decoder state before every (j + 1) * interval-th value, so
  /// DecompressSlice can start at most `interval` values before any target.
  /// One full decode pass; out gets floor((n - 1) / interval) states.
  void BuildSkipIndex(size_t interval, std::vector<SkipState>* out) const {
    out->clear();
    if (n_ <= 1) return;
    Cursor c = Head();
    (void)Next(c);
    for (size_t i = 1; i < n_; ++i) {
      if (i % interval == 0) {
        out->push_back({c.reader.position(), c.prev,
                        static_cast<int32_t>(c.lz), 0});
      }
      (void)Next(c);
    }
  }

  /// True when a (possibly forged) SkipState is safe to resume from: the
  /// bit position lands inside the stream past the 64-bit head literal, lz
  /// stays a valid read-width offset (the '10' branch reads 64 - lz bits)
  /// and tz is the unused-slot zero. Safety only — a validated state can
  /// still decode garbage.
  bool CheckSkipState(const SkipState& s) const {
    return s.bit_pos >= 64 && s.bit_pos <= bits_ && s.lz >= 0 && s.lz <= 63 &&
           s.tz == 0;
  }

  size_t size() const { return n_; }
  size_t SizeInBits() const { return bits_ + 64; }

  /// Appends the stream to a flat word writer (no magic — the caller frames
  /// it; see src/codecs/xor_codec.hpp for the framed SeriesCodec wrapper).
  void SerializeInto(WordWriter& w) const {
    w.Put(n_);
    w.Put(bits_);
    w.Put(words_.size());
    w.PutCells(words_.data(), words_.size());
  }

  /// Inverse of SerializeInto; rejects streams whose word count cannot back
  /// the declared bit size.
  static Chimp LoadFrom(WordReader& r) {
    Chimp out;
    out.n_ = r.Get();
    out.bits_ = r.Get();
    NEATS_REQUIRE(out.n_ <= (uint64_t{1} << 56), "corrupt Chimp stream");
    Storage<uint64_t> words = r.GetCells<uint64_t>(r.Get());
    NEATS_REQUIRE(words.size() == CeilDiv(out.bits_, 64) &&
                      (out.n_ == 0) == (out.bits_ == 0),
                  "corrupt Chimp stream");
    out.words_.assign(words.data(), words.data() + words.size());
    return out;
  }

 private:
  /// Decodes one token, advancing (prev, prev_lz) — the whole decoder state.
  void Step(BitReader& reader, uint64_t& prev, int& prev_lz) const {
    using namespace chimp_internal;
    uint64_t flag = reader.Read(2);
    switch (flag) {
      case 0b00:
        break;
      case 0b01: {
        int lz = kClassToLeading[reader.Read(3)];
        int sig = static_cast<int>(reader.Read(6));
        if (sig == 0) sig = 64;
        int tz = 64 - lz - sig;
        // A corrupt stream can encode lz + sig > 64; a negative shift
        // would be UB, so reject the stream instead of decoding it.
        NEATS_REQUIRE(tz >= 0, "corrupt Chimp stream");
        prev ^= reader.Read(sig) << tz;
        break;
      }
      case 0b10:
        prev ^= reader.Read(64 - prev_lz);
        break;
      default: {
        prev_lz = kClassToLeading[reader.Read(3)];
        prev ^= reader.Read(64 - prev_lz);
        break;
      }
    }
  }

  size_t n_ = 0;
  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

/// Chimp128: Chimp with a 128-value reference window.
class Chimp128 {
 public:
  Chimp128() = default;

  static constexpr int kWindowBits = 7;
  static constexpr size_t kWindow = 1u << kWindowBits;

  static Chimp128 Compress(std::span<const double> values) {
    using namespace chimp_internal;
    Chimp128 out;
    out.n_ = values.size();
    if (values.empty()) return out;
    BitWriter writer;
    std::vector<uint64_t> window;
    window.reserve(kWindow);
    uint64_t first = std::bit_cast<uint64_t>(values[0]);
    writer.Append(first, 64);
    window.push_back(first);
    int prev_class = -1;
    for (size_t i = 1; i < values.size(); ++i) {
      uint64_t cur = std::bit_cast<uint64_t>(values[i]);
      // Pick the window reference producing the most trailing zeros.
      size_t best = 0;
      int best_tz = -1;
      for (size_t j = 0; j < window.size(); ++j) {
        uint64_t x = cur ^ window[j];
        int tz = x == 0 ? 64 : CountTrailingZeros(x);
        if (tz > best_tz) {
          best_tz = tz;
          best = j;
        }
      }
      uint64_t x = cur ^ window[best];
      if (x == 0) {
        writer.Append(0b00, 2);
        writer.Append(static_cast<uint64_t>(best), kWindowBits);
        prev_class = -1;
      } else {
        int lz_exact = CountLeadingZeros(x);
        int cls = kLeadingClass[lz_exact];
        int lz = kClassToLeading[cls];
        int tz = CountTrailingZeros(x);
        if (tz > 6) {
          int sig = 64 - lz - tz;
          writer.Append(0b01, 2);
          writer.Append(static_cast<uint64_t>(best), kWindowBits);
          writer.Append(static_cast<uint64_t>(cls), 3);
          writer.Append(static_cast<uint64_t>(sig), 6);
          writer.Append(x >> tz, sig);
          prev_class = -1;
        } else {
          // Fall back to the immediately preceding value, Chimp-style.
          uint64_t xp = cur ^ window.back();
          int lzp_exact = CountLeadingZeros(xp == 0 ? 1 : xp);
          int clsp = kLeadingClass[lzp_exact];
          int lzp = kClassToLeading[clsp];
          if (clsp == prev_class) {
            writer.Append(0b10, 2);
            writer.Append(xp, 64 - lzp);
          } else {
            writer.Append(0b11, 2);
            writer.Append(static_cast<uint64_t>(clsp), 3);
            writer.Append(xp, 64 - lzp);
            prev_class = clsp;
          }
        }
      }
      if (window.size() == kWindow) window.erase(window.begin());
      window.push_back(cur);
    }
    out.bits_ = writer.bit_size();
    out.words_ = writer.TakeWords();
    return out;
  }

  void Decompress(std::vector<double>* out) const {
    using namespace chimp_internal;
    out->resize(n_);
    if (n_ == 0) return;
    BitReader reader(words_.data(), bits_);
    std::vector<uint64_t> window;
    window.reserve(kWindow);
    uint64_t cur = reader.Read(64);
    (*out)[0] = std::bit_cast<double>(cur);
    window.push_back(cur);
    int prev_lz = 0;
    for (size_t i = 1; i < n_; ++i) {
      uint64_t flag = reader.Read(2);
      switch (flag) {
        case 0b00: {
          size_t idx = reader.Read(kWindowBits);
          cur = window[idx];
          break;
        }
        case 0b01: {
          size_t idx = reader.Read(kWindowBits);
          int lz = kClassToLeading[reader.Read(3)];
          int sig = static_cast<int>(reader.Read(6));
          if (sig == 0) sig = 64;
          int tz = 64 - lz - sig;
          cur = window[idx] ^ (reader.Read(sig) << tz);
          break;
        }
        case 0b10:
          cur = window.back() ^ reader.Read(64 - prev_lz);
          break;
        default:
          prev_lz = kClassToLeading[reader.Read(3)];
          cur = window.back() ^ reader.Read(64 - prev_lz);
          break;
      }
      (*out)[i] = std::bit_cast<double>(cur);
      if (window.size() == kWindow) window.erase(window.begin());
      window.push_back(cur);
    }
  }

  size_t size() const { return n_; }
  size_t SizeInBits() const { return bits_ + 64; }

 private:
  size_t n_ = 0;
  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace neats
