// Adaptive Approximation (AA) — the lossy baseline of Sec. IV-B, after
// Xu et al. (EDBT 2012) and Qi et al. (WWW Journal 2015).
//
// AA segments the series online with a *heuristic*: every candidate function
// is forced through the first data point of the current segment, which
// leaves a single free parameter whose feasible set is an interval that
// shrinks as points arrive (O(1) work per point, but fewer covered points
// than the optimal polygon method — exactly the sub-optimality the paper
// measures). Candidate families, as in the original papers: linear,
// quadratic, and exponential through the first point:
//
//   linear       f(x) = y_i + theta * (x - x_i)
//   quadratic    f(x) = y_i + theta * (x - x_i)^2
//   exponential  f(x) = y_i * theta^(x - x_i)      (y_i > 0)
//
// When every family's interval empties, the segment is closed with the
// family that extended furthest and a new segment starts there.

#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace neats {

/// One AA segment: family, anchor point, single parameter.
struct AaSegment {
  enum Family : uint8_t { kLinear = 0, kQuadratic = 1, kExponential = 2 };
  uint64_t start = 0;
  uint64_t end = 0;
  Family family = kLinear;
  double y0 = 0;     // anchor value (the segment interpolates it)
  double theta = 0;  // the single fitted parameter

  double Predict(uint64_t k) const {
    double dx = static_cast<double>(k - start);
    switch (family) {
      case kLinear: return y0 + theta * dx;
      case kQuadratic: return y0 + theta * dx * dx;
      case kExponential: return y0 * std::pow(theta, dx);
    }
    return y0;
  }
};

/// Lossy piecewise representation produced by the AA heuristic.
class AdaptiveApproximation {
 public:
  AdaptiveApproximation() = default;

  static AdaptiveApproximation Compress(std::span<const int64_t> values,
                                        int64_t eps) {
    AdaptiveApproximation out;
    out.n_ = values.size();
    out.eps_ = eps;
    uint64_t start = 0;
    while (start < values.size()) {
      AaSegment seg = GrowSegment(values, start, eps);
      out.segments_.push_back(seg);
      start = seg.end;
    }
    return out;
  }

  uint64_t size() const { return n_; }
  size_t num_segments() const { return segments_.size(); }

  int64_t Access(uint64_t k) const {
    size_t lo = 0, hi = segments_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi + 1) / 2;
      if (segments_[mid].start <= k) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return static_cast<int64_t>(std::floor(segments_[lo].Predict(k)));
  }

  void Decompress(std::vector<int64_t>* out) const {
    out->resize(n_);
    for (const AaSegment& seg : segments_) {
      for (uint64_t k = seg.start; k < seg.end; ++k) {
        (*out)[k] = static_cast<int64_t>(std::floor(seg.Predict(k)));
      }
    }
  }

  /// Storage: per segment a start (64), family tag (8), anchor (64) and one
  /// parameter (64) — mirroring the paper's AA C++ implementation.
  size_t SizeInBits() const { return 2 * 64 + segments_.size() * (64 + 8 + 64 + 64); }

  const std::vector<AaSegment>& segments() const { return segments_; }

 private:
  struct Interval {
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
    bool empty = false;

    void Intersect(double a, double b) {
      lo = std::max(lo, a);
      hi = std::min(hi, b);
      if (lo > hi) empty = true;
    }
    double Mid() const {
      if (std::isinf(lo) && std::isinf(hi)) return 0;
      if (std::isinf(lo)) return hi;
      if (std::isinf(hi)) return lo;
      return (lo + hi) / 2;
    }
  };

  static AaSegment GrowSegment(std::span<const int64_t> values, uint64_t start,
                               int64_t eps) {
    const double y0 = static_cast<double>(values[start]);
    const double e = static_cast<double>(eps);

    Interval lin, quad, exp;
    bool exp_ok = y0 > 0;
    uint64_t lin_end = start + 1, quad_end = start + 1, exp_end = start + 1;
    double lin_theta = 0, quad_theta = 0, exp_theta = 1;
    bool lin_alive = true, quad_alive = true, exp_alive = exp_ok;

    for (uint64_t k = start + 1;
         k < values.size() && (lin_alive || quad_alive || exp_alive); ++k) {
      const double y = static_cast<double>(values[k]);
      const double dx = static_cast<double>(k - start);
      if (lin_alive) {
        lin.Intersect((y - e - y0) / dx, (y + e - y0) / dx);
        if (lin.empty) {
          lin_alive = false;
        } else {
          lin_theta = lin.Mid();
          lin_end = k + 1;
        }
      }
      if (quad_alive) {
        double dx2 = dx * dx;
        quad.Intersect((y - e - y0) / dx2, (y + e - y0) / dx2);
        if (quad.empty) {
          quad_alive = false;
        } else {
          quad_theta = quad.Mid();
          quad_end = k + 1;
        }
      }
      if (exp_alive) {
        // y0 * theta^dx within [y - e, y + e]; needs positive bounds.
        double lo_v = y - e, hi_v = y + e;
        if (hi_v <= 0) {
          exp_alive = false;
        } else {
          double lo_t = lo_v <= 0 ? 0 : std::pow(lo_v / y0, 1.0 / dx);
          double hi_t = std::pow(hi_v / y0, 1.0 / dx);
          exp.Intersect(lo_t, hi_t);
          if (exp.empty) {
            exp_alive = false;
          } else {
            exp_theta = exp.Mid();
            exp_end = k + 1;
          }
        }
      }
    }

    AaSegment seg;
    seg.start = start;
    seg.y0 = y0;
    // Pick the family that reached furthest (ties: cheaper family first).
    seg.family = AaSegment::kLinear;
    seg.end = lin_end;
    seg.theta = lin_theta;
    if (quad_end > seg.end) {
      seg.family = AaSegment::kQuadratic;
      seg.end = quad_end;
      seg.theta = quad_theta;
    }
    if (exp_ok && exp_end > seg.end) {
      seg.family = AaSegment::kExponential;
      seg.end = exp_end;
      seg.theta = exp_theta;
    }
    NEATS_DCHECK(seg.end > seg.start);
    return seg;
  }

  uint64_t n_ = 0;
  int64_t eps_ = 0;
  std::vector<AaSegment> segments_;
};

}  // namespace neats
