// Optimal Piecewise Linear Approximation (PLA) — the lossy baseline of
// Sec. IV-B, i.e. O'Rourke's algorithm producing the minimum number of
// linear segments under a given L-infinity error bound.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "functions/approximator.hpp"
#include "functions/kinds.hpp"

namespace neats {

/// Lossy piecewise-linear representation with the minimum number of segments.
class Pla {
 public:
  Pla() = default;

  /// Builds the optimal PLA of `values` under error bound `eps`.
  static Pla Compress(std::span<const int64_t> values, int64_t eps) {
    Pla out;
    out.n_ = values.size();
    out.eps_ = eps;
    if (values.empty()) return out;
    out.fragments_ =
        PiecewiseApproximation(values, FunctionKind::kLinear, eps);
    return out;
  }

  uint64_t size() const { return n_; }
  size_t num_segments() const { return fragments_.size(); }
  int64_t epsilon() const { return eps_; }

  /// Approximated value at index k (binary search over segments).
  int64_t Access(uint64_t k) const {
    size_t lo = 0, hi = fragments_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi + 1) / 2;
      if (fragments_[mid].start <= k) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return fragments_[lo].Predict(k);
  }

  /// Reconstructs the whole approximated series.
  void Decompress(std::vector<int64_t>* out) const {
    out->resize(n_);
    for (const Fragment& frag : fragments_) {
      const double m = frag.params[0];
      const double b = frag.params[1];
      for (uint64_t k = frag.start; k < frag.end; ++k) {
        double pred = m * static_cast<double>(k - frag.origin + 1) + b;
        (*out)[k] = static_cast<int64_t>(std::floor(pred));
      }
    }
  }

  /// Storage: per segment a 64-bit start index and two 64-bit parameters
  /// (the layout used by the paper's C++ PLA baseline).
  size_t SizeInBits() const { return 2 * 64 + fragments_.size() * 3 * 64; }

  const std::vector<Fragment>& fragments() const { return fragments_; }

 private:
  uint64_t n_ = 0;
  int64_t eps_ = 0;
  std::vector<Fragment> fragments_;
};

}  // namespace neats
