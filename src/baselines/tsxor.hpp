// TSXor (Bruno et al., SPIRE 2021): byte-oriented XOR compression with a
// window of recent values.
//
// Each value is encoded as one of:
//   control c in [0, 127]   — exact copy of window[c]
//   control c in [128, 254] — XOR with window[c - 128]; one descriptor byte
//                             (first nonzero byte << 4 | span length) and the
//                             nonzero XOR bytes follow
//   control 255             — literal: 8 raw bytes
// The window holds the most recent 127 values.

#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/bits.hpp"

namespace neats {

/// TSXor-compressed sequence of doubles.
class TsXor {
 public:
  TsXor() = default;

  static constexpr size_t kWindow = 127;

  static TsXor Compress(std::span<const double> values) {
    TsXor out;
    out.n_ = values.size();
    std::vector<uint64_t> window;
    window.reserve(kWindow);
    for (size_t i = 0; i < values.size(); ++i) {
      uint64_t cur = std::bit_cast<uint64_t>(values[i]);
      // Exact match?
      size_t exact = SIZE_MAX;
      size_t best = SIZE_MAX;
      int best_cost = 9;  // literal cost: control + 8 bytes
      int best_first = 0, best_span = 0;
      for (size_t j = 0; j < window.size(); ++j) {
        uint64_t x = cur ^ window[j];
        if (x == 0) {
          exact = j;
          break;
        }
        int first = CountTrailingZeros(x) / 8;
        int last = 7 - CountLeadingZeros(x) / 8;
        int span = last - first + 1;
        if (2 + span < best_cost) {
          best_cost = 2 + span;
          best = j;
          best_first = first;
          best_span = span;
        }
      }
      if (exact != SIZE_MAX) {
        out.bytes_.push_back(static_cast<uint8_t>(exact));
      } else if (best != SIZE_MAX) {
        uint64_t x = cur ^ window[best];
        out.bytes_.push_back(static_cast<uint8_t>(128 + best));
        out.bytes_.push_back(
            static_cast<uint8_t>((best_first << 4) | (best_span - 1)));
        for (int b = 0; b < best_span; ++b) {
          out.bytes_.push_back(
              static_cast<uint8_t>(x >> ((best_first + b) * 8)));
        }
      } else {
        out.bytes_.push_back(255);
        for (int b = 0; b < 8; ++b) {
          out.bytes_.push_back(static_cast<uint8_t>(cur >> (b * 8)));
        }
      }
      if (window.size() == kWindow) window.erase(window.begin());
      window.push_back(cur);
    }
    return out;
  }

  void Decompress(std::vector<double>* out) const {
    out->resize(n_);
    std::vector<uint64_t> window;
    window.reserve(kWindow);
    size_t pos = 0;
    for (size_t i = 0; i < n_; ++i) {
      uint8_t control = bytes_[pos++];
      uint64_t cur;
      if (control < 128) {
        cur = window[control];
      } else if (control == 255) {
        cur = 0;
        for (int b = 0; b < 8; ++b) {
          cur |= static_cast<uint64_t>(bytes_[pos++]) << (b * 8);
        }
      } else {
        uint8_t desc = bytes_[pos++];
        int first = desc >> 4;
        int span = (desc & 0xF) + 1;
        uint64_t x = 0;
        for (int b = 0; b < span; ++b) {
          x |= static_cast<uint64_t>(bytes_[pos++]) << ((first + b) * 8);
        }
        cur = window[control - 128] ^ x;
      }
      (*out)[i] = std::bit_cast<double>(cur);
      if (window.size() == kWindow) window.erase(window.begin());
      window.push_back(cur);
    }
  }

  size_t size() const { return n_; }
  size_t SizeInBits() const { return bytes_.size() * 8 + 64; }

 private:
  size_t n_ = 0;
  std::vector<uint8_t> bytes_;
};

}  // namespace neats
