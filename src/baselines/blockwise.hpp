// Block-wise random access wrapper (paper, Sec. IV-A2).
//
// Compressors without native random access are applied to blocks of 1000
// consecutive values, with an array mapping each block index to its
// compressed blob; accessing one value decompresses its block. This is the
// standard benchmark harness used by Chimp/Elf and adopted by the paper.

#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "succinct/storage.hpp"

namespace neats {

inline constexpr size_t kDefaultBlockValues = 1000;

/// Wraps a streaming value codec (Gorilla/Chimp/Chimp128/TsXor): the codec
/// must provide static Compress(span<const double>) returning an object with
/// Decompress(std::vector<double>*) and SizeInBits().
template <typename Codec>
class Blockwise {
 public:
  Blockwise() = default;

  static Blockwise Compress(std::span<const double> values,
                            size_t block_values = kDefaultBlockValues) {
    Blockwise out;
    out.n_ = values.size();
    out.block_values_ = block_values;
    size_t blocks = values.empty() ? 0 : (values.size() - 1) / block_values + 1;
    out.blocks_.reserve(blocks);
    for (size_t b = 0; b < blocks; ++b) {
      size_t begin = b * block_values;
      size_t len = std::min(block_values, values.size() - begin);
      out.blocks_.push_back(Codec::Compress(values.subspan(begin, len)));
    }
    return out;
  }

  /// Random access: decompresses the containing block.
  double Access(size_t i) const {
    std::vector<double> buffer;
    blocks_[i / block_values_].Decompress(&buffer);
    return buffer[i % block_values_];
  }

  /// Range access: decompresses the covered blocks.
  void DecompressRange(size_t from, size_t len, double* out) const {
    std::vector<double> buffer;
    size_t produced = 0;
    while (produced < len) {
      size_t b = (from + produced) / block_values_;
      blocks_[b].Decompress(&buffer);
      size_t offset = (from + produced) - b * block_values_;
      size_t take = std::min(len - produced, buffer.size() - offset);
      std::memcpy(out + produced, buffer.data() + offset, take * sizeof(double));
      produced += take;
    }
  }

  void Decompress(std::vector<double>* out) const {
    out->resize(n_);
    std::vector<double> buffer;
    size_t op = 0;
    for (const Codec& block : blocks_) {
      block.Decompress(&buffer);
      std::memcpy(out->data() + op, buffer.data(), buffer.size() * sizeof(double));
      op += buffer.size();
    }
  }

  size_t size() const { return n_; }

  // Block geometry, for wrappers that decode block-at-a-time themselves
  // (XorSeriesCodec's skip-index kernels seek inside individual blocks
  // instead of going through the whole-block Access above).
  size_t num_blocks() const { return blocks_.size(); }
  size_t block_values() const { return block_values_; }
  const Codec& block(size_t b) const { return blocks_[b]; }
  /// Values held by block b (the last block may be partial).
  size_t block_count(size_t b) const {
    return std::min(block_values_, n_ - b * block_values_);
  }

  /// Blob bits plus one 64-bit pointer per block (the paper's offset array).
  size_t SizeInBits() const {
    size_t bits = 2 * 64;
    for (const Codec& block : blocks_) bits += block.SizeInBits() + 64;
    return bits;
  }

  /// Appends the wrapper geometry plus every block (Codec::SerializeInto)
  /// to a flat word writer; the caller frames it with a magic + version.
  void SerializeInto(WordWriter& w) const {
    w.Put(n_);
    w.Put(block_values_);
    for (const Codec& block : blocks_) block.SerializeInto(w);
  }

  /// Inverse of SerializeInto; the block count is derived from the stored
  /// geometry and every block's decoded length is checked against its slice.
  static Blockwise LoadFrom(WordReader& r) {
    Blockwise out;
    out.n_ = r.Get();
    out.block_values_ = r.Get();
    NEATS_REQUIRE(out.n_ <= (uint64_t{1} << 56) && out.block_values_ > 0,
                  "corrupt block-wise blob");
    size_t blocks = out.n_ == 0 ? 0 : (out.n_ - 1) / out.block_values_ + 1;
    out.blocks_.reserve(blocks);
    for (size_t b = 0; b < blocks; ++b) {
      out.blocks_.push_back(Codec::LoadFrom(r));
      size_t expected =
          std::min(out.block_values_, out.n_ - b * out.block_values_);
      NEATS_REQUIRE(out.blocks_.back().size() == expected,
                    "corrupt block-wise blob");
    }
    return out;
  }

 private:
  size_t n_ = 0;
  size_t block_values_ = kDefaultBlockValues;
  std::vector<Codec> blocks_;
};

/// Byte-codec policies for the general-purpose compressors.
template <typename Policy>
class BlockwiseBytes {
 public:
  BlockwiseBytes() = default;

  static BlockwiseBytes Compress(std::span<const int64_t> values,
                                 size_t block_values = kDefaultBlockValues) {
    BlockwiseBytes out;
    out.n_ = values.size();
    out.block_values_ = block_values;
    size_t blocks = values.empty() ? 0 : (values.size() - 1) / block_values + 1;
    out.blocks_.reserve(blocks);
    for (size_t b = 0; b < blocks; ++b) {
      size_t begin = b * block_values;
      size_t len = std::min(block_values, values.size() - begin);
      std::span<const uint8_t> bytes(
          reinterpret_cast<const uint8_t*>(values.data() + begin),
          len * sizeof(int64_t));
      out.blocks_.push_back(Policy::CompressBytes(bytes));
    }
    return out;
  }

  int64_t Access(size_t i) const {
    size_t b = i / block_values_;
    size_t len = std::min(block_values_, n_ - b * block_values_);
    std::vector<int64_t> buffer(len);
    DecodeBlock(b, buffer);
    return buffer[i % block_values_];
  }

  void DecompressRange(size_t from, size_t len, int64_t* out) const {
    std::vector<int64_t> buffer;
    size_t produced = 0;
    while (produced < len) {
      size_t b = (from + produced) / block_values_;
      size_t blen = std::min(block_values_, n_ - b * block_values_);
      buffer.resize(blen);
      DecodeBlock(b, buffer);
      size_t offset = (from + produced) - b * block_values_;
      size_t take = std::min(len - produced, blen - offset);
      std::memcpy(out + produced, buffer.data() + offset,
                  take * sizeof(int64_t));
      produced += take;
    }
  }

  void Decompress(std::vector<int64_t>* out) const {
    out->resize(n_);
    for (size_t b = 0; b < blocks_.size(); ++b) {
      size_t begin = b * block_values_;
      size_t len = std::min(block_values_, n_ - begin);
      std::span<int64_t> slice(out->data() + begin, len);
      Policy::DecompressBytes(blocks_[b],
                              std::span<uint8_t>(
                                  reinterpret_cast<uint8_t*>(slice.data()),
                                  slice.size() * sizeof(int64_t)));
    }
  }

  size_t size() const { return n_; }

  size_t SizeInBits() const {
    size_t bits = 2 * 64;
    for (const auto& block : blocks_) bits += block.size() * 8 + 64;
    return bits;
  }

 private:
  void DecodeBlock(size_t b, std::span<int64_t> out) const {
    Policy::DecompressBytes(
        blocks_[b], std::span<uint8_t>(reinterpret_cast<uint8_t*>(out.data()),
                                       out.size() * sizeof(int64_t)));
  }

  size_t n_ = 0;
  size_t block_values_ = kDefaultBlockValues;
  std::vector<std::vector<uint8_t>> blocks_;
};

}  // namespace neats
