// The networked serving front-end: NeatsServer exposes one NeatsStore's
// read surface over TCP (ROADMAP item 1 — the step that turns "millions of
// users" into a measurable RPS number).
//
// Shape (docs/ARCHITECTURE.md, "Network layer"):
//
//   accept ─▶ [ IO thread: epoll/poll event loop ]
//                │  nonblocking reads ─▶ frame/line parser ─▶ per-conn
//                │  request queue (admission gate sheds kOverloaded here)
//                │
//                │  dispatch: one work item per connection at a time —
//                │  a run of consecutive Access requests coalesces into
//                │  ONE store AccessBatch call (the wire layer inherits
//                │  the B>=64 batch-kernel win), anything else runs alone
//                ▼
//             [ worker ThreadPool (common/thread_pool.hpp, Submit) ]
//                │  executes against the store under its shared reader
//                │  lock — many connections read concurrently with a
//                │  live Append()er — then hands the response bytes back
//                ▼
//             [ IO thread: write buffers, backpressure, timeouts ]
//
// Threading contract: the IO thread owns every socket, buffer, and queue;
// workers only ever touch a connection's mutex-guarded handoff buffer and
// never a file descriptor. Completions travel through a wake pipe, so the
// loop is never polled blind. One work item per connection keeps responses
// in request order (sheds are the documented exception — they answer
// immediately, which is the point; match by frame id).
//
// Robustness is part of the subsystem: bounded input/output buffers,
// max-inflight admission shedding typed kOverloaded responses instead of
// queueing unboundedly, idle-connection timeouts, graceful drain (stop
// accepting, finish queued work, flush, close), and malformed-frame
// hardening — oversized length words, bad CRCs, truncations, hostile JSON
// all produce a typed error or a clean close, never a crash
// (tests/net_test.cpp sweeps every truncation point and clobbers every
// header byte).
//
// Dialects: binary frames (src/net/protocol.hpp), line-delimited JSON on
// the same port (first byte '{'), and a minimal HTTP GET responder so
// `curl http://host:port/stats` returns the stats document — the
// observability layer's StatsSnapshot()/MetricsJson wired to a route.

#pragma once

#include <poll.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_json.hpp"
#include "store/neats_store.hpp"

namespace neats::net {

/// Tuning knobs of a NeatsServer.
struct NeatsServerOptions {
  /// IPv4 address to bind. Loopback by default — fronting a store on a
  /// public interface is a proxy's job.
  std::string host = "127.0.0.1";

  /// TCP port; 0 asks the kernel for an ephemeral port (read it back with
  /// port() after Start()).
  uint16_t port = 0;

  /// Request-executing worker threads (the IO loop is one more thread on
  /// top). 0 runs every request inline on the IO thread — single-threaded
  /// mode, still correct, useful for deterministic tests.
  int worker_threads = 3;

  /// listen(2) backlog.
  int backlog = 128;

  /// Open-connection cap; connections beyond it are accepted and
  /// immediately closed (counted as conn.rejected).
  size_t max_connections = 1024;

  /// Frame payload cap, both directions: a request announcing more is
  /// rejected and the connection closed; a query whose response would
  /// exceed it gets kBadRequest. Also caps a JSON line.
  size_t max_frame_bytes = size_t{16} << 20;

  /// Admission gate: total requests queued + executing across every
  /// connection. At the cap, new requests are shed with a typed
  /// kOverloaded response instead of queueing unboundedly.
  size_t max_inflight = 1024;

  /// Per-connection queued-request cap (a single pipelining client cannot
  /// monopolize the admission budget); over it, requests shed kOverloaded.
  size_t max_queued_per_conn = 512;

  /// Access-coalescing window in microseconds: when a connection's queue
  /// holds only Access requests and fewer than coalesce_max_batch of them,
  /// dispatch waits up to this long for more probes to arrive so they ride
  /// one AccessBatch call. 0 = dispatch as soon as a worker is free
  /// (pipelined probes still coalesce naturally — everything that arrived
  /// while the previous item executed forms the next batch).
  uint32_t coalesce_window_us = 0;

  /// Largest coalesced Access run fed to one store AccessBatch call.
  uint32_t coalesce_max_batch = 512;

  /// Connections idle (no requests in flight, nothing buffered) longer
  /// than this are closed. 0 = never.
  uint32_t idle_timeout_ms = 60000;

  /// Graceful-drain budget: after RequestStop(), queued work gets this
  /// long to finish and flush before remaining connections are closed.
  uint32_t drain_timeout_ms = 5000;

  /// Force the poll(2) backend (the epoll backend is default on Linux).
  /// The fallback is always compiled; this knob exists so tests cover it.
  bool use_poll = false;
};

namespace server_internal {

/// Readiness poller with two backends behind one interface: epoll on
/// Linux, poll(2) everywhere (and on Linux when forced, so the fallback
/// stays tested). Level-triggered in both.
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool hangup = false;
  };

  explicit Poller(bool use_poll) : use_poll_(use_poll) {
#ifdef __linux__
    if (!use_poll_) {
      ep_ = ::epoll_create1(0);
      if (ep_ < 0) ThrowErrno("epoll_create1");
    }
#else
    use_poll_ = true;
#endif
  }

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  ~Poller() {
    if (ep_ >= 0) ::close(ep_);
  }

  void Add(int fd, bool want_read, bool want_write) {
#ifdef __linux__
    if (!use_poll_) {
      epoll_event ev = MakeEpoll(fd, want_read, want_write);
      if (::epoll_ctl(ep_, EPOLL_CTL_ADD, fd, &ev) < 0) {
        ThrowErrno("epoll_ctl(ADD)");
      }
      return;
    }
#endif
    pfds_.push_back({fd, Events(want_read, want_write), 0});
  }

  void Update(int fd, bool want_read, bool want_write) {
#ifdef __linux__
    if (!use_poll_) {
      epoll_event ev = MakeEpoll(fd, want_read, want_write);
      if (::epoll_ctl(ep_, EPOLL_CTL_MOD, fd, &ev) < 0) {
        ThrowErrno("epoll_ctl(MOD)");
      }
      return;
    }
#endif
    for (pollfd& p : pfds_) {
      if (p.fd == fd) {
        p.events = Events(want_read, want_write);
        return;
      }
    }
  }

  void Remove(int fd) {
#ifdef __linux__
    if (!use_poll_) {
      ::epoll_ctl(ep_, EPOLL_CTL_DEL, fd, nullptr);
      return;
    }
#endif
    for (size_t i = 0; i < pfds_.size(); ++i) {
      if (pfds_[i].fd == fd) {
        pfds_[i] = pfds_.back();
        pfds_.pop_back();
        return;
      }
    }
  }

  /// Waits up to timeout_ms (-1 = forever) and appends ready fds to *out.
  void Wait(std::vector<Event>* out, int timeout_ms) {
    out->clear();
#ifdef __linux__
    if (!use_poll_) {
      epoll_event evs[64];
      const int n = ::epoll_wait(ep_, evs, 64, timeout_ms);
      if (n < 0) {
        if (errno == EINTR) return;
        ThrowErrno("epoll_wait");
      }
      for (int i = 0; i < n; ++i) {
        Event e;
        e.fd = evs[i].data.fd;
        e.readable = (evs[i].events & EPOLLIN) != 0;
        e.writable = (evs[i].events & EPOLLOUT) != 0;
        e.hangup = (evs[i].events & (EPOLLHUP | EPOLLERR)) != 0;
        out->push_back(e);
      }
      return;
    }
#endif
    const int n = ::poll(pfds_.data(), pfds_.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return;
      ThrowErrno("poll");
    }
    for (const pollfd& p : pfds_) {
      if (p.revents == 0) continue;
      Event e;
      e.fd = p.fd;
      e.readable = (p.revents & POLLIN) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.hangup = (p.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
      out->push_back(e);
    }
  }

 private:
  static short Events(bool r, bool w) {
    return static_cast<short>((r ? POLLIN : 0) | (w ? POLLOUT : 0));
  }
#ifdef __linux__
  static epoll_event MakeEpoll(int fd, bool r, bool w) {
    epoll_event ev{};
    ev.events = (r ? EPOLLIN : 0u) | (w ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    return ev;
  }
#endif

  bool use_poll_;
  int ep_ = -1;
  std::vector<pollfd> pfds_;
};

/// The server's wiring into the observability layer — its own registry
/// (connections, per-opcode requests, sheds, bytes, coalescing), separate
/// from the store's so the stats document reports both sides.
struct ServerObs {
  obs::MetricsRegistry registry;
  obs::CounterId c_accepted, c_closed, c_rejected, c_idle_closed,
      c_requests, c_errors, c_shed, c_bytes_in, c_bytes_out, c_bad_frames,
      c_json_requests, c_http_requests, c_coalesced_batches,
      c_coalesced_probes;
  obs::CounterId c_op[kMaxOpcode + 1];
  obs::GaugeId g_connections, g_inflight;
  obs::HistogramId h_op[kMaxOpcode + 1];
  obs::HistogramId h_batch;

  ServerObs() {
    c_accepted = registry.AddCounter("conn.accepted");
    c_closed = registry.AddCounter("conn.closed");
    c_rejected = registry.AddCounter("conn.rejected");
    c_idle_closed = registry.AddCounter("conn.idle_closed");
    c_requests = registry.AddCounter("req.total");
    c_errors = registry.AddCounter("resp.errors");
    c_shed = registry.AddCounter("req.shed");
    c_bytes_in = registry.AddCounter("bytes.in");
    c_bytes_out = registry.AddCounter("bytes.out");
    c_bad_frames = registry.AddCounter("frames.malformed");
    c_json_requests = registry.AddCounter("req.json");
    c_http_requests = registry.AddCounter("req.http");
    c_coalesced_batches = registry.AddCounter("coalesce.batches");
    c_coalesced_probes = registry.AddCounter("coalesce.probes");
    for (uint8_t op = 1; op <= kMaxOpcode; ++op) {
      c_op[op] = registry.AddCounter(
          std::string("req.") + OpcodeName(static_cast<Opcode>(op)));
      h_op[op] = registry.AddHistogram(
          std::string("op.") + OpcodeName(static_cast<Opcode>(op)));
    }
    h_batch = registry.AddHistogram("coalesce.batch");
    g_connections = registry.AddGauge("conn.open");
    g_inflight = registry.AddGauge("req.inflight");
  }
};

/// One parsed request, normalized across the binary and JSON dialects.
struct Request {
  Opcode op = Opcode::kPing;
  uint64_t id = 0;
  uint64_t a = 0;                  // index / from
  uint64_t b = 0;                  // len
  std::vector<uint64_t> idx;       // access_batch probes
  std::vector<IndexRange> ranges;  // multi-range query
};

/// One connection. The IO thread owns everything except `handoff`/`busy`,
/// which carry worker results back under `hand_mu`.
struct Conn {
  enum class Mode { kUnknown, kBinary, kJson, kHttp };

  int fd = -1;
  Mode mode = Mode::kUnknown;
  std::vector<uint8_t> in;    // unparsed input bytes
  std::string out;            // response bytes awaiting the socket
  std::deque<Request> queue;  // parsed, admitted, not yet dispatched
  bool closed = false;        // fd closed, conn detached from the map
  bool read_shut = false;     // peer sent FIN (or HTTP request complete)
  bool close_after_drain = false;
  bool want_read = true;      // cached poller interest
  bool want_write = false;
  uint64_t last_activity = 0;
  uint64_t defer_since = 0;   // coalesce-window start (0 = not deferring)

  std::mutex hand_mu;
  std::string handoff;  // worker-produced responses, pending pickup
  bool busy = false;    // a work item is executing (guarded by hand_mu)
};

}  // namespace server_internal

/// A TCP front-end serving one NeatsStore's read surface. Construction
/// binds nothing; Start() binds, spawns the IO thread, and returns.
/// Queries run against the caller's store concurrently with the caller's
/// own appends/queries (the store's single-writer/multi-reader contract);
/// the server itself never mutates the store.
class NeatsServer {
  using Conn = server_internal::Conn;
  using Poller = server_internal::Poller;
  using Request = server_internal::Request;
  using ServerObs = server_internal::ServerObs;

 public:
  explicit NeatsServer(const NeatsStore& store,
                       NeatsServerOptions options = {})
      : store_(store),
        options_(std::move(options)),
        obs_(std::make_unique<ServerObs>()),
        workers_(std::make_unique<ThreadPool>(options_.worker_threads + 1)) {
    NEATS_REQUIRE(options_.max_frame_bytes >= 64,
                  "max_frame_bytes too small to carry any request");
    if (options_.coalesce_max_batch == 0) options_.coalesce_max_batch = 1;
  }

  NeatsServer(const NeatsServer&) = delete;
  NeatsServer& operator=(const NeatsServer&) = delete;

  ~NeatsServer() { Stop(); }

  /// Binds the listener (throwing on failure — before any thread exists),
  /// then spawns the IO loop.
  void Start() {
    NEATS_REQUIRE(!io_.joinable(), "server already started");
    stop_.store(false, std::memory_order_relaxed);
    listen_fd_ =
        CreateListener(options_.host, options_.port, options_.backlog);
    SetNonBlocking(listen_fd_);
    port_ = BoundPort(listen_fd_);
    int pfd[2];
    if (::pipe(pfd) < 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      ThrowErrno("pipe");
    }
    wake_r_ = pfd[0];
    wake_w_ = pfd[1];
    SetNonBlocking(wake_r_);
    SetNonBlocking(wake_w_);
    io_ = std::thread([this] { IoLoop(); });
  }

  /// The port the server listens on (after Start()).
  uint16_t port() const { return port_; }

  /// Asks the IO loop to drain and exit. Async-signal-safe: one atomic
  /// store and one write(2) — the server binary calls this from its
  /// SIGINT/SIGTERM handler.
  void RequestStop() {
    stop_.store(true, std::memory_order_release);
    if (wake_w_ >= 0) {
      const char b = 's';
      [[maybe_unused]] ssize_t n = ::write(wake_w_, &b, 1);
    }
  }

  /// Graceful shutdown: stop accepting, finish queued work (up to
  /// drain_timeout_ms), flush, close, join. Idempotent.
  void Stop() {
    if (!io_.joinable()) return;
    RequestStop();
    io_.join();
    workers_->DrainTasks();
    if (wake_r_ >= 0) ::close(wake_r_);
    if (wake_w_ >= 0) ::close(wake_w_);
    wake_r_ = wake_w_ = -1;
  }

  /// A point-in-time snapshot of the server-side registry (conn.*, req.*,
  /// coalesce.*, bytes.*; gauges refreshed).
  obs::MetricsSnapshot StatsSnapshot() const {
    ServerObs& ob = *obs_;
    ob.registry.SetGauge(
        ob.g_connections,
        static_cast<int64_t>(open_conns_.load(std::memory_order_relaxed)));
    ob.registry.SetGauge(
        ob.g_inflight,
        static_cast<int64_t>(inflight_.load(std::memory_order_relaxed)));
    return ob.registry.Snapshot();
  }

  /// The stats document the kStats opcode, the JSON dialect, and the HTTP
  /// route all serve: {"server": <server metrics>, "store": <store
  /// metrics>} in the obs::MetricsJson schema.
  std::string StatsJson() const {
    std::string out = "{\n\"server\":\n";
    out += obs::MetricsJson(StatsSnapshot());
    out += ",\n\"store\":\n";
    out += obs::MetricsJson(store_.StatsSnapshot());
    out += "\n}";
    return out;
  }

 private:
  // --- IO loop -------------------------------------------------------------

  void IoLoop() {
    Poller poller(options_.use_poll);
    poller_ = &poller;
    poller.Add(listen_fd_, /*read=*/true, /*write=*/false);
    poller.Add(wake_r_, /*read=*/true, /*write=*/false);
    std::vector<Poller::Event> events;
    uint64_t last_idle_sweep = obs::NowNs();
    uint64_t drain_deadline = 0;
    bool draining = false;
    while (true) {
      const bool any_deferred = deferred_ > 0;
      poller.Wait(&events, any_deferred ? 1 : 50);
      const uint64_t now = obs::NowNs();
      for (const Poller::Event& ev : events) {
        if (ev.fd == wake_r_) {
          char buf[256];
          while (::read(wake_r_, buf, sizeof(buf)) > 0) {
          }
          continue;
        }
        if (ev.fd == listen_fd_) {
          if (!draining && ev.readable) AcceptNew(now);
          continue;
        }
        auto it = conns_.find(ev.fd);
        if (it == conns_.end()) continue;
        // A copy, not a reference: CloseConn (reachable from every handler
        // below) erases the map node this iterator points into.
        const std::shared_ptr<Conn> conn = it->second;
        if (ev.hangup && !ev.readable) {
          CloseConn(conn);
          continue;
        }
        if (ev.readable && !draining) OnReadable(conn, now);
        if (conn->closed) continue;
        if (ev.writable) FlushOut(conn);
        if (conn->closed) continue;
        TryDispatch(conn, now);
        MaybeFinish(conn);
        if (!conn->closed) UpdateInterest(conn, draining);
      }
      HandleCompletions(now, draining);
      if (stop_.load(std::memory_order_acquire) && !draining) {
        draining = true;
        drain_deadline =
            now + uint64_t{options_.drain_timeout_ms} * 1'000'000;
        poller.Remove(listen_fd_);
        ::close(listen_fd_);
        listen_fd_ = -1;
        // Stop reading everywhere; queued work keeps executing.
        for (auto& [fd, conn] : conns_) UpdateInterest(conn, draining);
      }
      if (deferred_ > 0) {
        // Re-visit coalesce-deferred connections; their window may be up
        // (or draining flushes them immediately).
        for (auto& [fd, conn] : conns_) {
          if (conn->defer_since != 0) {
            TryDispatch(conn, draining ? ~uint64_t{0} : now);
            if (!conn->closed) UpdateInterest(conn, draining);
          }
        }
      }
      if (draining) {
        bool all_idle = true;
        for (auto& [fd, conn] : conns_) {
          if (!ConnIdle(*conn)) {
            all_idle = false;
            break;
          }
        }
        if (all_idle || now >= drain_deadline) break;
        continue;
      }
      if (options_.idle_timeout_ms > 0 &&
          now - last_idle_sweep > 1'000'000'000) {
        last_idle_sweep = now;
        IdleSweep(now);
      }
    }
    // Drain epilogue: every response that could be flushed has been (or
    // the deadline passed); close whatever remains.
    std::vector<std::shared_ptr<Conn>> leftover;
    leftover.reserve(conns_.size());
    for (auto& [fd, conn] : conns_) leftover.push_back(conn);
    for (auto& conn : leftover) CloseConn(conn);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    poller_ = nullptr;
  }

  bool ConnIdle(const Conn& conn) {
    if (!conn.queue.empty() || !conn.out.empty()) return false;
    std::lock_guard<std::mutex> lk(
        const_cast<std::mutex&>(conn.hand_mu));
    return !conn.busy && conn.handoff.empty();
  }

  void AcceptNew(uint64_t now) {
    while (true) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          return;
        }
        return;  // transient accept failure; the loop will retry
      }
      if (conns_.size() >= options_.max_connections) {
        ::close(fd);
        obs_->registry.Count(obs_->c_rejected);
        continue;
      }
      SetNonBlocking(fd);
      SetNoDelay(fd);
      auto conn = std::make_shared<Conn>();
      conn->fd = fd;
      conn->last_activity = now;
      conns_.emplace(fd, conn);
      poller_->Add(fd, /*read=*/true, /*write=*/false);
      open_conns_.fetch_add(1, std::memory_order_relaxed);
      obs_->registry.Count(obs_->c_accepted);
    }
  }

  void IdleSweep(uint64_t now) {
    const uint64_t budget =
        uint64_t{options_.idle_timeout_ms} * 1'000'000;
    std::vector<std::shared_ptr<Conn>> victims;
    for (auto& [fd, conn] : conns_) {
      if (now - conn->last_activity > budget && ConnIdle(*conn)) {
        victims.push_back(conn);
      }
    }
    for (auto& conn : victims) {
      obs_->registry.Count(obs_->c_idle_closed);
      CloseConn(conn);
    }
  }

  // By value on purpose: callers often pass the shared_ptr stored inside
  // conns_, and the erase below would destroy a by-reference parameter
  // mid-function.
  void CloseConn(std::shared_ptr<Conn> conn) {  // NOLINT
    if (conn->closed) return;
    conn->closed = true;
    poller_->Remove(conn->fd);
    ::close(conn->fd);
    conns_.erase(conn->fd);
    // Requests admitted but never dispatched release their admission
    // slots; executing requests release theirs at worker completion.
    if (!conn->queue.empty()) {
      inflight_.fetch_sub(conn->queue.size(), std::memory_order_relaxed);
      conn->queue.clear();
    }
    if (conn->defer_since != 0) {
      conn->defer_since = 0;
      --deferred_;
    }
    open_conns_.fetch_sub(1, std::memory_order_relaxed);
    obs_->registry.Count(obs_->c_closed);
  }

  void UpdateInterest(const std::shared_ptr<Conn>& conn, bool draining) {
    const bool read =
        !draining && !conn->read_shut &&
        conn->out.size() < options_.max_frame_bytes * 2 &&
        conn->in.size() < options_.max_frame_bytes + kFrameHeaderBytes;
    const bool write = !conn->out.empty();
    if (read != conn->want_read || write != conn->want_write) {
      conn->want_read = read;
      conn->want_write = write;
      poller_->Update(conn->fd, read, write);
    }
  }

  void OnReadable(const std::shared_ptr<Conn>& conn, uint64_t now) {
    uint8_t buf[64 * 1024];
    while (!conn->read_shut &&
           conn->in.size() <
               options_.max_frame_bytes + kFrameHeaderBytes + sizeof(buf)) {
      const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        CloseConn(conn);
        return;
      }
      if (n == 0) {
        // FIN: the peer is done sending; finish its queued work, flush,
        // then close from our side.
        conn->read_shut = true;
        conn->close_after_drain = true;
        break;
      }
      conn->in.insert(conn->in.end(), buf, buf + n);
      obs_->registry.Count(obs_->c_bytes_in, static_cast<uint64_t>(n));
      conn->last_activity = now;
      if (static_cast<size_t>(n) < sizeof(buf)) break;
    }
    if (!conn->closed) ParseInput(conn, now);
  }

  // --- Parsing (IO thread) -------------------------------------------------

  void ParseInput(const std::shared_ptr<Conn>& conn, uint64_t now) {
    if (conn->mode == Conn::Mode::kUnknown) {
      if (conn->in.empty()) return;
      const uint8_t first = conn->in[0];
      if (first == 0x4E) {  // 'N' — binary magic
        conn->mode = Conn::Mode::kBinary;
      } else if (first == '{') {
        conn->mode = Conn::Mode::kJson;
      } else if (first == 'G') {
        conn->mode = Conn::Mode::kHttp;
      } else {
        obs_->registry.Count(obs_->c_bad_frames);
        SendError(conn, Opcode::kPing, 0, WireStatus::kBadRequest,
                  "unrecognized protocol");
        conn->close_after_drain = true;
        conn->read_shut = true;
        return;
      }
    }
    switch (conn->mode) {
      case Conn::Mode::kBinary: ParseBinary(conn, now); break;
      case Conn::Mode::kJson: ParseJsonLines(conn, now); break;
      case Conn::Mode::kHttp: ParseHttp(conn, now); break;
      case Conn::Mode::kUnknown: break;
    }
  }

  void ParseBinary(const std::shared_ptr<Conn>& conn, uint64_t now) {
    while (!conn->closed && conn->in.size() >= kFrameHeaderBytes) {
      FrameHeader h;
      if (!DecodeFrameHeader(conn->in, &h)) {
        HardProtocolError(conn, 0, "bad frame magic");
        return;
      }
      if (h.version != kProtocolVersion) {
        HardProtocolError(conn, h.id, "unsupported protocol version");
        return;
      }
      if (h.payload_len > options_.max_frame_bytes) {
        // A forged length word: do NOT wait for that many bytes.
        HardProtocolError(conn, h.id, "frame exceeds max_frame_bytes");
        return;
      }
      const size_t frame = kFrameHeaderBytes + h.payload_len;
      if (conn->in.size() < frame) return;  // await the rest
      const std::span<const uint8_t> header(conn->in.data(),
                                            kFrameHeaderBytes);
      const std::span<const uint8_t> payload(
          conn->in.data() + kFrameHeaderBytes, h.payload_len);
      if (!VerifyFrameCrc(header, payload)) {
        // The stream's framing can no longer be trusted.
        HardProtocolError(conn, h.id, "frame CRC mismatch");
        return;
      }
      if (!IsValidOpcode(h.opcode)) {
        obs_->registry.Count(obs_->c_bad_frames);
        SendError(conn, Opcode::kPing, h.id, WireStatus::kBadRequest,
                  "unknown opcode");
        conn->in.erase(conn->in.begin(),
                       conn->in.begin() + static_cast<ptrdiff_t>(frame));
        continue;
      }
      Request req;
      req.op = static_cast<Opcode>(h.opcode);
      req.id = h.id;
      std::string parse_error;
      if (!ParsePayload(payload, &req, &parse_error)) {
        obs_->registry.Count(obs_->c_bad_frames);
        SendError(conn, req.op, h.id, WireStatus::kBadRequest, parse_error);
      } else {
        Admit(conn, std::move(req));
      }
      conn->in.erase(conn->in.begin(),
                     conn->in.begin() + static_cast<ptrdiff_t>(frame));
    }
    TryDispatch(conn, now);
    FlushOut(conn);
    if (!conn->closed) UpdateInterest(conn, false);
  }

  /// Binary payload grammar per opcode (docs/FORMAT.md).
  bool ParsePayload(std::span<const uint8_t> payload, Request* req,
                    std::string* error) {
    PayloadReader r(payload);
    switch (req->op) {
      case Opcode::kPing:
      case Opcode::kSize:
      case Opcode::kStats:
        break;
      case Opcode::kAccess:
        req->a = r.U64();
        break;
      case Opcode::kAccessBatch: {
        const uint32_t n = r.U32();
        if (uint64_t{n} * 8 > payload.size()) {
          *error = "probe count disagrees with payload size";
          return false;
        }
        r.U64Vec(n, &req->idx);
        break;
      }
      case Opcode::kDecompressRange:
      case Opcode::kRangeSum:
        req->a = r.U64();
        req->b = r.U64();
        break;
      case Opcode::kDecompressRanges: {
        const uint32_t n = r.U32();
        if (uint64_t{n} * 16 > payload.size()) {
          *error = "range count disagrees with payload size";
          return false;
        }
        req->ranges.resize(n);
        for (uint32_t i = 0; i < n; ++i) {
          req->ranges[i].from = r.U64();
          req->ranges[i].len = r.U64();
        }
        break;
      }
    }
    if (!r.ok() || !r.AtEnd()) {
      *error = "malformed payload";
      return false;
    }
    return true;
  }

  void ParseJsonLines(const std::shared_ptr<Conn>& conn, uint64_t now) {
    while (!conn->closed) {
      const auto nl =
          std::find(conn->in.begin(), conn->in.end(), uint8_t{'\n'});
      if (nl == conn->in.end()) {
        if (conn->in.size() > options_.max_frame_bytes) {
          HardProtocolError(conn, 0, "JSON line exceeds max_frame_bytes");
        }
        break;
      }
      const std::string_view line(
          reinterpret_cast<const char*>(conn->in.data()),
          static_cast<size_t>(nl - conn->in.begin()));
      obs_->registry.Count(obs_->c_json_requests);
      Request req;
      std::string error;
      const bool ok = ParseJsonRequest(line, &req, &error);
      conn->in.erase(conn->in.begin(), nl + 1);
      if (!ok) {
        obs_->registry.Count(obs_->c_bad_frames);
        SendError(conn, req.op, req.id, WireStatus::kBadRequest, error);
        continue;
      }
      Admit(conn, std::move(req));
    }
    TryDispatch(conn, now);
    FlushOut(conn);
    if (!conn->closed) UpdateInterest(conn, false);
  }

  bool ParseJsonRequest(std::string_view line, Request* req,
                        std::string* error) {
    JsonValue v;
    if (!ParseJson(line, &v) || v.kind != JsonValue::Kind::kObject) {
      *error = "not a JSON object";
      return false;
    }
    if (const JsonValue* id = v.Find("id")) {
      if (id->integral) req->id = static_cast<uint64_t>(id->integer);
    }
    const JsonValue* op = v.Find("op");
    if (op == nullptr || op->kind != JsonValue::Kind::kString) {
      *error = "missing \"op\"";
      return false;
    }
    auto u64_field = [&](const char* name, uint64_t* out) {
      const JsonValue* f = v.Find(name);
      if (f == nullptr || !f->AsU64(out)) {
        *error = std::string("missing or invalid \"") + name + "\"";
        return false;
      }
      return true;
    };
    const std::string& name = op->string;
    if (name == "ping") {
      req->op = Opcode::kPing;
    } else if (name == "size") {
      req->op = Opcode::kSize;
    } else if (name == "stats") {
      req->op = Opcode::kStats;
    } else if (name == "access") {
      req->op = Opcode::kAccess;
      if (!u64_field("i", &req->a)) return false;
    } else if (name == "access_batch") {
      req->op = Opcode::kAccessBatch;
      const JsonValue* idx = v.Find("idx");
      if (idx == nullptr || idx->kind != JsonValue::Kind::kArray) {
        *error = "missing or invalid \"idx\"";
        return false;
      }
      req->idx.reserve(idx->array.size());
      for (const JsonValue& e : idx->array) {
        uint64_t i;
        if (!e.AsU64(&i)) {
          *error = "\"idx\" holds a non-index value";
          return false;
        }
        req->idx.push_back(i);
      }
    } else if (name == "range" || name == "range_sum") {
      req->op = name == "range" ? Opcode::kDecompressRange
                                : Opcode::kRangeSum;
      if (!u64_field("from", &req->a) || !u64_field("len", &req->b)) {
        return false;
      }
    } else if (name == "ranges") {
      req->op = Opcode::kDecompressRanges;
      const JsonValue* rs = v.Find("ranges");
      if (rs == nullptr || rs->kind != JsonValue::Kind::kArray) {
        *error = "missing or invalid \"ranges\"";
        return false;
      }
      for (const JsonValue& e : rs->array) {
        uint64_t from, len;
        if (e.kind != JsonValue::Kind::kArray || e.array.size() != 2 ||
            !e.array[0].AsU64(&from) || !e.array[1].AsU64(&len)) {
          *error = "\"ranges\" entries must be [from, len]";
          return false;
        }
        req->ranges.push_back({from, len});
      }
    } else {
      *error = "unknown op \"" + name + "\"";
      return false;
    }
    return true;
  }

  void ParseHttp(const std::shared_ptr<Conn>& conn, uint64_t now) {
    static constexpr std::string_view kEnd = "\r\n\r\n";
    const std::string_view text(
        reinterpret_cast<const char*>(conn->in.data()), conn->in.size());
    const size_t end = text.find(kEnd);
    if (end == std::string_view::npos) {
      if (conn->in.size() > 8192) {
        obs_->registry.Count(obs_->c_bad_frames);
        conn->out += "HTTP/1.0 400 Bad Request\r\n\r\n";
        conn->close_after_drain = true;
        conn->read_shut = true;
        FlushOut(conn);
      }
      return;
    }
    obs_->registry.Count(obs_->c_http_requests);
    const std::string_view request_line =
        text.substr(0, text.find("\r\n"));
    conn->read_shut = true;  // one request per HTTP connection
    conn->close_after_drain = true;
    conn->in.clear();
    const bool is_stats = request_line.rfind("GET /stats", 0) == 0 ||
                          request_line.rfind("GET /metrics", 0) == 0 ||
                          request_line.rfind("GET / ", 0) == 0;
    if (!is_stats) {
      conn->out +=
          "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n"
          "Connection: close\r\n\r\n";
      FlushOut(conn);
      if (!conn->closed) {
        MaybeFinish(conn);
        if (!conn->closed) UpdateInterest(conn, false);
      }
      return;
    }
    Request req;
    req.op = Opcode::kStats;
    Admit(conn, std::move(req));
    TryDispatch(conn, now);
    if (!conn->closed) UpdateInterest(conn, false);
  }

  /// A framing-level failure the stream cannot recover from: best-effort
  /// typed error response, then close after it drains.
  void HardProtocolError(const std::shared_ptr<Conn>& conn, uint64_t id,
                         const std::string& message) {
    obs_->registry.Count(obs_->c_bad_frames);
    SendError(conn, Opcode::kPing, id, WireStatus::kBadRequest, message);
    conn->in.clear();
    conn->read_shut = true;
    conn->close_after_drain = true;
    FlushOut(conn);
    if (!conn->closed) {
      MaybeFinish(conn);
      if (!conn->closed) UpdateInterest(conn, false);
    }
  }

  // --- Admission & dispatch (IO thread) ------------------------------------

  void Admit(const std::shared_ptr<Conn>& conn, Request req) {
    obs_->registry.Count(obs_->c_requests);
    obs_->registry.Count(obs_->c_op[static_cast<uint8_t>(req.op)]);
    // Ping and Stats bypass the gate: the health probe and the stats
    // endpoint are exactly what an operator needs while the server sheds.
    const bool gated =
        req.op != Opcode::kPing && req.op != Opcode::kStats;
    const size_t inflight = inflight_.load(std::memory_order_relaxed);
    if (gated &&
        (inflight >= options_.max_inflight ||
         conn->queue.size() >= options_.max_queued_per_conn)) {
      obs_->registry.Count(obs_->c_shed);
      SendError(conn, req.op, req.id, WireStatus::kOverloaded,
                "shed by admission control");
      return;
    }
    inflight_.fetch_add(1, std::memory_order_relaxed);
    conn->queue.push_back(std::move(req));
  }

  /// Starts the next work item if the connection is free: a coalesced run
  /// of leading Access requests (one store AccessBatch call), or a single
  /// request of any other opcode. Passing `now = ~0` flushes any pending
  /// coalesce window (used while draining).
  void TryDispatch(const std::shared_ptr<Conn>& conn, uint64_t now) {
    if (conn->closed || conn->queue.empty()) return;
    {
      std::lock_guard<std::mutex> lk(conn->hand_mu);
      if (conn->busy) return;
    }
    size_t run = 0;
    while (run < conn->queue.size() &&
           conn->queue[run].op == Opcode::kAccess &&
           run < options_.coalesce_max_batch) {
      ++run;
    }
    if (run > 0 && run == conn->queue.size() &&
        run < options_.coalesce_max_batch &&
        options_.coalesce_window_us > 0 && !conn->read_shut &&
        now != ~uint64_t{0}) {
      // The whole queue is a still-growing Access run: hold it open for
      // the coalescing window before spending a batch call on it.
      if (conn->defer_since == 0) {
        conn->defer_since = now;
        ++deferred_;
        return;
      }
      if (now - conn->defer_since <
          uint64_t{options_.coalesce_window_us} * 1000) {
        return;
      }
    }
    if (conn->defer_since != 0) {
      conn->defer_since = 0;
      --deferred_;
    }
    const size_t take = run > 0 ? run : 1;
    std::vector<Request> items;
    items.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      items.push_back(std::move(conn->queue.front()));
      conn->queue.pop_front();
    }
    {
      std::lock_guard<std::mutex> lk(conn->hand_mu);
      conn->busy = true;
    }
    const auto mode = conn->mode;
    workers_->Submit([this, conn, mode, items = std::move(items)]() mutable {
      ExecuteItem(conn, mode, items);
    });
  }

  /// IO-thread epilogue for a connection that owes nothing more.
  void MaybeFinish(const std::shared_ptr<Conn>& conn) {
    if (!conn->closed && conn->close_after_drain && ConnIdle(*conn)) {
      CloseConn(conn);
    }
  }

  void FlushOut(const std::shared_ptr<Conn>& conn) {
    while (!conn->out.empty()) {
      const ssize_t n = ::send(conn->fd, conn->out.data(),
                               conn->out.size(), MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        CloseConn(conn);
        return;
      }
      obs_->registry.Count(obs_->c_bytes_out, static_cast<uint64_t>(n));
      conn->out.erase(0, static_cast<size_t>(n));
    }
  }

  void HandleCompletions(uint64_t now, bool draining) {
    std::vector<std::shared_ptr<Conn>> done;
    {
      std::lock_guard<std::mutex> lk(comp_mu_);
      done.swap(completed_);
    }
    for (const std::shared_ptr<Conn>& conn : done) {
      if (conn->closed) continue;
      {
        std::lock_guard<std::mutex> lk(conn->hand_mu);
        conn->out += conn->handoff;
        conn->handoff.clear();
      }
      conn->last_activity = now;
      TryDispatch(conn, draining ? ~uint64_t{0} : now);
      FlushOut(conn);
      if (conn->closed) continue;
      MaybeFinish(conn);
      if (!conn->closed) UpdateInterest(conn, draining);
    }
  }

  // --- Execution (worker threads) ------------------------------------------

  void ExecuteItem(const std::shared_ptr<Conn>& conn, Conn::Mode mode,
                   std::vector<Request>& items) {
    std::string out;
    if (items.size() > 1) {
      ExecuteCoalesced(mode, items, &out);
    } else {
      const uint64_t t0 = obs::NowNs();
      ExecuteOne(mode, items[0], &out);
      obs_->registry.Record(
          obs_->h_op[static_cast<uint8_t>(items[0].op)],
          obs::NowNs() - t0);
    }
    {
      std::lock_guard<std::mutex> lk(conn->hand_mu);
      conn->handoff += out;
      conn->busy = false;
    }
    inflight_.fetch_sub(items.size(), std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(comp_mu_);
      completed_.push_back(conn);
    }
    const char b = 'c';
    [[maybe_unused]] ssize_t n = ::write(wake_w_, &b, 1);
  }

  /// A coalesced Access run: every in-bounds probe rides one store
  /// AccessBatch call; each request still gets its own response (values in
  /// request order, out-of-range probes answered individually). The run's
  /// service time lands in the "op.access" histogram once, its size in
  /// "coalesce.batch".
  void ExecuteCoalesced(Conn::Mode mode, std::vector<Request>& items,
                        std::string* out) {
    const uint64_t t0 = obs::NowNs();
    obs_->registry.Count(obs_->c_coalesced_batches);
    obs_->registry.Count(obs_->c_coalesced_probes, items.size());
    obs_->registry.Record(obs_->h_batch, items.size());
    const uint64_t size = store_.size();
    std::vector<uint64_t> idx;
    idx.reserve(items.size());
    for (const Request& r : items) {
      if (r.a < size) idx.push_back(r.a);
    }
    std::vector<int64_t> values(idx.size());
    WireStatus failure = WireStatus::kOk;
    std::string failure_msg;
    if (!idx.empty()) {
      try {
        store_.AccessBatch(idx, values);
      } catch (const Error& e) {
        failure = e.code() == StatusCode::kUnavailable
                      ? WireStatus::kUnavailable
                      : WireStatus::kInternal;
        failure_msg = e.what();
      } catch (const std::exception& e) {
        failure = WireStatus::kInternal;
        failure_msg = e.what();
      }
    }
    size_t at = 0;
    for (const Request& r : items) {
      if (r.a >= size) {
        AppendError(mode, r.op, r.id, WireStatus::kOutOfRange,
                    "index past store size", out);
        continue;
      }
      if (failure != WireStatus::kOk) {
        AppendError(mode, r.op, r.id, failure, failure_msg, out);
        ++at;
        continue;
      }
      AppendValueResponse(mode, r.id, values[at++], out);
    }
    obs_->registry.Record(obs_->h_op[static_cast<uint8_t>(Opcode::kAccess)],
                          obs::NowNs() - t0);
  }

  void ExecuteOne(Conn::Mode mode, const Request& req, std::string* out) {
    try {
      switch (req.op) {
        case Opcode::kPing: {
          AppendOk(mode, req.op, req.id, {}, "", out);
          return;
        }
        case Opcode::kSize: {
          const uint64_t size = store_.size();
          if (mode == Conn::Mode::kBinary) {
            std::vector<uint8_t> payload;
            PayloadWriter w(&payload);
            w.U64(size);
            AppendOk(mode, req.op, req.id, payload, "", out);
          } else {
            AppendOk(mode, req.op, req.id, {},
                     "\"size\": " + std::to_string(size), out);
          }
          return;
        }
        case Opcode::kStats: {
          const std::string stats = StatsJson();
          if (mode == Conn::Mode::kHttp) {
            *out += "HTTP/1.0 200 OK\r\nContent-Type: application/json\r\n"
                    "Content-Length: " +
                    std::to_string(stats.size()) +
                    "\r\nConnection: close\r\n\r\n" + stats;
          } else if (mode == Conn::Mode::kBinary) {
            AppendOk(mode, req.op, req.id,
                     {reinterpret_cast<const uint8_t*>(stats.data()),
                      stats.size()},
                     "", out);
          } else {
            // Stats is itself a JSON object; embed it (newlines stripped,
            // since the dialect is line-delimited).
            std::string flat = stats;
            std::erase(flat, '\n');
            AppendOk(mode, req.op, req.id, {},
                     "\"stats\": " + flat, out);
          }
          return;
        }
        case Opcode::kAccess: {
          if (req.a >= store_.size()) {
            AppendError(mode, req.op, req.id, WireStatus::kOutOfRange,
                        "index past store size", out);
            return;
          }
          AppendValueResponse(mode, req.id, store_.Access(req.a), out);
          return;
        }
        case Opcode::kAccessBatch: {
          const uint64_t size = store_.size();
          for (uint64_t i : req.idx) {
            if (i >= size) {
              AppendError(mode, req.op, req.id, WireStatus::kOutOfRange,
                          "probe past store size", out);
              return;
            }
          }
          std::vector<int64_t> values(req.idx.size());
          store_.AccessBatch(req.idx, values);
          AppendValuesResponse(mode, req.op, req.id, values, out);
          return;
        }
        case Opcode::kDecompressRange:
        case Opcode::kDecompressRanges:
        case Opcode::kRangeSum: {
          std::span<const IndexRange> ranges;
          IndexRange single{req.a, req.b};
          if (req.op == Opcode::kDecompressRanges) {
            ranges = req.ranges;
          } else {
            ranges = {&single, 1};
          }
          const uint64_t size = store_.size();
          uint64_t total = 0;
          for (const IndexRange& r : ranges) {
            if (r.len > size || r.from > size - r.len) {
              AppendError(mode, req.op, req.id, WireStatus::kOutOfRange,
                          "range past store size", out);
              return;
            }
            total += r.len;
            if (req.op != Opcode::kRangeSum &&
                total > options_.max_frame_bytes / 8) {
              AppendError(mode, req.op, req.id, WireStatus::kBadRequest,
                          "response would exceed max_frame_bytes", out);
              return;
            }
          }
          if (req.op == Opcode::kRangeSum) {
            AppendValueResponse(mode, req.id, store_.RangeSum(req.a, req.b),
                                out, /*sum=*/true);
            return;
          }
          std::vector<int64_t> values(total);
          if (req.op == Opcode::kDecompressRange) {
            store_.DecompressRange(req.a, req.b, values.data());
          } else {
            store_.DecompressRanges(ranges, values.data());
          }
          AppendValuesResponse(mode, req.op, req.id, values, out);
          return;
        }
      }
      AppendError(mode, req.op, req.id, WireStatus::kBadRequest,
                  "unknown opcode", out);
    } catch (const Error& e) {
      AppendError(mode, req.op, req.id,
                  e.code() == StatusCode::kUnavailable
                      ? WireStatus::kUnavailable
                      : WireStatus::kInternal,
                  e.what(), out);
    } catch (const std::exception& e) {
      AppendError(mode, req.op, req.id, WireStatus::kInternal, e.what(),
                  out);
    }
  }

  // --- Response formatting (worker or IO thread; writes to a local) --------

  /// Success envelope. Binary: a kOk frame carrying `payload`. JSON: an
  /// {"id", "ok": true, ...} line carrying `json_fields` (pre-rendered
  /// `"key": value` text, may be empty).
  void AppendOk(Conn::Mode mode, Opcode op, uint64_t id,
                std::span<const uint8_t> payload,
                const std::string& json_fields, std::string* out) {
    if (mode == Conn::Mode::kBinary) {
      std::vector<uint8_t> frame;
      AppendFrame(&frame, op, static_cast<uint16_t>(WireStatus::kOk), id,
                  payload);
      out->append(reinterpret_cast<const char*>(frame.data()),
                  frame.size());
      return;
    }
    *out += "{\"id\": " + std::to_string(id) + ", \"ok\": true";
    if (!json_fields.empty()) *out += ", " + json_fields;
    *out += "}\n";
  }

  void AppendValueResponse(Conn::Mode mode, uint64_t id, int64_t value,
                           std::string* out, bool sum = false) {
    if (mode == Conn::Mode::kBinary) {
      std::vector<uint8_t> payload;
      PayloadWriter w(&payload);
      w.I64(value);
      AppendOk(mode, sum ? Opcode::kRangeSum : Opcode::kAccess, id, payload,
               "", out);
      return;
    }
    AppendOk(mode, Opcode::kAccess, id, {},
             std::string(sum ? "\"sum\": " : "\"value\": ") +
                 std::to_string(value),
             out);
  }

  void AppendValuesResponse(Conn::Mode mode, Opcode op, uint64_t id,
                            std::span<const int64_t> values,
                            std::string* out) {
    if (mode == Conn::Mode::kBinary) {
      std::vector<uint8_t> payload;
      PayloadWriter w(&payload);
      w.I64Span(values);
      AppendOk(mode, op, id, payload, "", out);
      return;
    }
    std::string field = "\"values\": [";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) field += ", ";
      field += std::to_string(values[i]);
    }
    field += "]";
    AppendOk(mode, op, id, {}, field, out);
  }

  void AppendError(Conn::Mode mode, Opcode op, uint64_t id, WireStatus s,
                   const std::string& message, std::string* out) {
    obs_->registry.Count(obs_->c_errors);
    if (mode == Conn::Mode::kBinary) {
      std::vector<uint8_t> frame;
      AppendFrame(&frame, op, static_cast<uint16_t>(s), id,
                  {reinterpret_cast<const uint8_t*>(message.data()),
                   message.size()});
      out->append(reinterpret_cast<const char*>(frame.data()),
                  frame.size());
      return;
    }
    if (mode == Conn::Mode::kHttp) {
      *out += "HTTP/1.0 503 Service Unavailable\r\nContent-Length: 0\r\n"
              "Connection: close\r\n\r\n";
      return;
    }
    *out += "{\"id\": " + std::to_string(id) +
            ", \"ok\": false, \"status\": \"";
    *out += WireStatusName(s);
    *out += "\", \"error\": ";
    AppendJsonString(out, message);
    *out += "}\n";
  }

  /// IO-thread-side immediate error (sheds, parse failures): same
  /// formatting, straight into the connection's out buffer.
  void SendError(const std::shared_ptr<Conn>& conn, Opcode op, uint64_t id,
                 WireStatus s, const std::string& message) {
    Conn::Mode mode = conn->mode;
    if (mode == Conn::Mode::kUnknown) mode = Conn::Mode::kBinary;
    AppendError(mode, op, id, s, message, &conn->out);
  }

  const NeatsStore& store_;
  NeatsServerOptions options_;
  std::unique_ptr<ServerObs> obs_;
  std::unique_ptr<ThreadPool> workers_;

  int listen_fd_ = -1;
  int wake_r_ = -1;
  int wake_w_ = -1;
  uint16_t port_ = 0;
  std::thread io_;
  std::atomic<bool> stop_{false};
  std::atomic<size_t> inflight_{0};
  std::atomic<size_t> open_conns_{0};

  // IO-thread state.
  Poller* poller_ = nullptr;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
  size_t deferred_ = 0;  // connections holding a coalesce window open

  // Worker -> IO completion handoff.
  std::mutex comp_mu_;
  std::vector<std::shared_ptr<Conn>> completed_;
};

}  // namespace neats::net
