// The wire protocol of the neats serving front-end (src/net/server.hpp).
//
// One port, three self-announcing dialects, distinguished by the first byte
// a connection sends:
//
//   'N' (0x4E)  binary frames — the production protocol (below)
//   '{' (0x7B)  line-delimited JSON — same operations, human-debuggable
//   'G' (0x47)  "GET ..." — a minimal HTTP/1.0 responder for the stats
//               route, so `curl http://host:port/stats` works
//
// Binary framing: a 24-byte little-endian header followed by the payload,
// the whole frame covered by a CRC32C (io/checksum.hpp — the same
// polynomial the storage layer trailers use):
//
//   offset  size  field
//   0       4     magic "NETS" (0x5354454E)
//   4       1     version (kProtocolVersion = 1)
//   5       1     opcode (requests) / echoed opcode (responses)
//   6       2     status: 0 on requests; a WireStatus on responses
//   8       8     id: chosen by the client, echoed verbatim — lets a
//                 pipelining client match responses to requests
//   16      4     payload byte count
//   20      4     CRC32C over header bytes [0, 20) ++ payload
//
// Requests and responses share the frame shape; an error response carries
// a non-zero status and a human-readable message as its payload. Payload
// grammars per opcode live in docs/FORMAT.md; integers are little-endian,
// values are int64, indexes/lengths are uint64.
//
// Hardening contract (tests/net_test.cpp sweeps this): a frame with a bad
// magic, an unknown version/opcode, a length word past the server's
// max_frame_bytes, or a CRC mismatch yields a typed error response and/or
// a clean close — never a crash, never an out-of-bounds read.

#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "io/checksum.hpp"

namespace neats::net {

inline constexpr uint32_t kFrameMagic = 0x5354454Eu;  // "NETS"
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 24;

/// Operations the server carries — the NeatsStore read surface plus
/// introspection. Values are wire format; renumbering is a protocol break.
enum class Opcode : uint8_t {
  kPing = 1,              // ()               -> ()
  kAccess = 2,            // (u64 i)          -> (i64 value)
  kAccessBatch = 3,       // (u32 n, n*u64)   -> (n*i64)
  kDecompressRange = 4,   // (u64 from, len)  -> (len*i64)
  kDecompressRanges = 5,  // (u32 n, n*(u64 from, u64 len)) -> (sum*i64)
  kRangeSum = 6,          // (u64 from, len)  -> (i64 sum)
  kSize = 7,              // ()               -> (u64 size)
  kStats = 8,             // ()               -> (UTF-8 JSON document)
};

inline constexpr uint8_t kMaxOpcode = 8;

inline bool IsValidOpcode(uint8_t op) {
  return op >= 1 && op <= kMaxOpcode;
}

inline const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kPing: return "ping";
    case Opcode::kAccess: return "access";
    case Opcode::kAccessBatch: return "access_batch";
    case Opcode::kDecompressRange: return "range";
    case Opcode::kDecompressRanges: return "ranges";
    case Opcode::kRangeSum: return "range_sum";
    case Opcode::kSize: return "size";
    case Opcode::kStats: return "stats";
  }
  return "unknown";
}

/// Response status word. kOverloaded is the admission gate's typed shed
/// (the request was rejected up front, retry against less load); it and
/// kShuttingDown are the two statuses a healthy client is expected to see
/// under stress. kUnavailable maps the store's quarantined-range error.
enum class WireStatus : uint16_t {
  kOk = 0,
  kBadRequest = 1,    // malformed frame/payload, unknown opcode
  kOutOfRange = 2,    // index/range past the store's current size
  kUnavailable = 3,   // the range routes into a quarantined shard
  kOverloaded = 4,    // shed by the admission gate; retry later
  kShuttingDown = 5,  // server is draining; connection closes after this
  kInternal = 6,      // unexpected server-side failure
};

inline const char* WireStatusName(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kBadRequest: return "bad_request";
    case WireStatus::kOutOfRange: return "out_of_range";
    case WireStatus::kUnavailable: return "unavailable";
    case WireStatus::kOverloaded: return "overloaded";
    case WireStatus::kShuttingDown: return "shutting_down";
    case WireStatus::kInternal: return "internal";
  }
  return "unknown";
}

/// The neats::StatusCode a client-side error for `s` carries (the client
/// library throws neats::Error so callers reuse the store's error
/// taxonomy; overload/drain map to kUnavailable — "not now", not "broken").
inline StatusCode WireStatusToCode(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return StatusCode::kOk;
    case WireStatus::kUnavailable:
    case WireStatus::kOverloaded:
    case WireStatus::kShuttingDown: return StatusCode::kUnavailable;
    case WireStatus::kBadRequest:
    case WireStatus::kOutOfRange: return StatusCode::kFailed;
    case WireStatus::kInternal: return StatusCode::kFailed;
  }
  return StatusCode::kFailed;
}

/// A decoded frame header (magic already checked and stripped of meaning).
struct FrameHeader {
  uint8_t version = kProtocolVersion;
  uint8_t opcode = 0;
  uint16_t status = 0;
  uint64_t id = 0;
  uint32_t payload_len = 0;
  uint32_t crc = 0;  // as carried on the wire
};

namespace wire_internal {

inline void PutU16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, 2); }
inline void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
inline void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, 8); }
inline uint16_t GetU16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
inline uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace wire_internal

/// Appends one complete frame (header + payload) to `out`.
inline void AppendFrame(std::vector<uint8_t>* out, Opcode op, uint16_t status,
                        uint64_t id, std::span<const uint8_t> payload) {
  using namespace wire_internal;
  const size_t at = out->size();
  out->resize(at + kFrameHeaderBytes + payload.size());
  uint8_t* h = out->data() + at;
  PutU32(h, kFrameMagic);
  h[4] = kProtocolVersion;
  h[5] = static_cast<uint8_t>(op);
  PutU16(h + 6, status);
  PutU64(h + 8, id);
  PutU32(h + 16, static_cast<uint32_t>(payload.size()));
  uint32_t crc = Crc32c({h, 20});
  crc = Crc32c(payload, crc);
  PutU32(h + 20, crc);
  if (!payload.empty()) {
    std::memcpy(h + kFrameHeaderBytes, payload.data(), payload.size());
  }
}

/// Decodes the 24-byte header at `bytes` (must hold at least
/// kFrameHeaderBytes). Returns false on a magic mismatch.
inline bool DecodeFrameHeader(std::span<const uint8_t> bytes,
                              FrameHeader* out) {
  using namespace wire_internal;
  NEATS_DCHECK(bytes.size() >= kFrameHeaderBytes);
  const uint8_t* h = bytes.data();
  if (GetU32(h) != kFrameMagic) return false;
  out->version = h[4];
  out->opcode = h[5];
  out->status = GetU16(h + 6);
  out->id = GetU64(h + 8);
  out->payload_len = GetU32(h + 16);
  out->crc = GetU32(h + 20);
  return true;
}

/// Verifies the frame CRC: `header_bytes` is the raw 24-byte header,
/// `payload` the payload it announced.
inline bool VerifyFrameCrc(std::span<const uint8_t> header_bytes,
                           std::span<const uint8_t> payload) {
  NEATS_DCHECK(header_bytes.size() >= kFrameHeaderBytes);
  uint32_t crc = Crc32c(header_bytes.subspan(0, 20));
  crc = Crc32c(payload, crc);
  return crc == wire_internal::GetU32(header_bytes.data() + 20);
}

/// Little-endian payload builder (append-only over a caller's vector).
class PayloadWriter {
 public:
  explicit PayloadWriter(std::vector<uint8_t>* out) : out_(out) {}

  void U32(uint32_t v) {
    const size_t at = out_->size();
    out_->resize(at + 4);
    wire_internal::PutU32(out_->data() + at, v);
  }
  void U64(uint64_t v) {
    const size_t at = out_->size();
    out_->resize(at + 8);
    wire_internal::PutU64(out_->data() + at, v);
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void I64Span(std::span<const int64_t> values) {
    const size_t at = out_->size();
    out_->resize(at + values.size() * 8);
    std::memcpy(out_->data() + at, values.data(), values.size() * 8);
  }

 private:
  std::vector<uint8_t>* out_;
};

/// Bounds-checked little-endian payload cursor. Reads past the end set a
/// sticky failure flag and return 0 instead of touching out-of-bounds
/// memory; callers check ok() (and usually AtEnd()) once at the end.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  uint32_t U32() {
    if (!Take(4)) return 0;
    return wire_internal::GetU32(bytes_.data() + pos_ - 4);
  }
  uint64_t U64() {
    if (!Take(8)) return 0;
    return wire_internal::GetU64(bytes_.data() + pos_ - 8);
  }
  int64_t I64() { return static_cast<int64_t>(U64()); }

  /// Reads `n` int64 values into `out` (resized).
  void I64Vec(size_t n, std::vector<int64_t>* out) {
    if (!Take(n * 8)) {
      out->clear();
      return;
    }
    out->resize(n);
    std::memcpy(out->data(), bytes_.data() + pos_ - n * 8, n * 8);
  }
  void U64Vec(size_t n, std::vector<uint64_t>* out) {
    if (!Take(n * 8)) {
      out->clear();
      return;
    }
    out->resize(n);
    std::memcpy(out->data(), bytes_.data() + pos_ - n * 8, n * 8);
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  bool Take(size_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --------------------------------------------------------------------------
// Minimal JSON for the line-delimited debug dialect. Parses the subset the
// protocol needs (objects, arrays, numbers, strings, true/false/null) with
// a hard depth limit; anything else is a clean parse failure, never UB.
// --------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  int64_t integer = 0;   // exact when `integral`
  bool integral = false;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; null when absent or not an object.
  const JsonValue* Find(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// The value as a uint64 index/length; false when not an integral
  /// non-negative number.
  bool AsU64(uint64_t* out) const {
    if (kind != Kind::kNumber || !integral || integer < 0) return false;
    *out = static_cast<uint64_t>(integer);
    return true;
  }
};

namespace json_internal {

inline constexpr int kMaxDepth = 16;

struct Parser {
  std::string_view text;
  size_t pos = 0;

  bool Fail() { return false; }
  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\r' ||
            text[pos] == '\n')) {
      ++pos;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (pos >= text.size() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Eat('"')) return false;
    out->clear();
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return false;
        char e = text[pos++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            // Decode \uXXXX as Latin-1 where it fits; the protocol never
            // needs more, and rejecting surrogates keeps this tiny.
            if (text.size() - pos < 4) return false;
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            if (v > 0xFF) return false;
            out->push_back(static_cast<char>(v));
            break;
          }
          default: return false;
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      out->push_back(c);
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    SkipWs();
    const size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    size_t digits = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      ++pos;
      ++digits;
    }
    if (digits == 0) return false;
    bool integral = true;
    if (pos < text.size() && text[pos] == '.') {
      integral = false;
      ++pos;
      size_t frac = 0;
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
        ++pos;
        ++frac;
      }
      if (frac == 0) return false;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      integral = false;
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      size_t exp = 0;
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
        ++pos;
        ++exp;
      }
      if (exp == 0) return false;
    }
    const std::string token(text.substr(start, pos - start));
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(token.c_str(), nullptr);
    out->integral = false;
    if (integral && token.size() <= 19) {  // int64 never needs more digits
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        out->integer = v;
        out->integral = true;
      }
    }
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return false;
    SkipWs();
    if (pos >= text.size()) return false;
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out->kind = JsonValue::Kind::kObject;
      SkipWs();
      if (Eat('}')) return true;
      while (true) {
        std::string key;
        if (!ParseString(&key)) return false;
        if (!Eat(':')) return false;
        JsonValue v;
        if (!ParseValue(&v, depth + 1)) return false;
        out->object.emplace_back(std::move(key), std::move(v));
        if (Eat(',')) continue;
        return Eat('}');
      }
    }
    if (c == '[') {
      ++pos;
      out->kind = JsonValue::Kind::kArray;
      SkipWs();
      if (Eat(']')) return true;
      while (true) {
        JsonValue v;
        if (!ParseValue(&v, depth + 1)) return false;
        out->array.push_back(std::move(v));
        if (Eat(',')) continue;
        return Eat(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (text.substr(pos, 4) == "true") {
      pos += 4;
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return true;
    }
    if (text.substr(pos, 5) == "false") {
      pos += 5;
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return true;
    }
    if (text.substr(pos, 4) == "null") {
      pos += 4;
      out->kind = JsonValue::Kind::kNull;
      return true;
    }
    return ParseNumber(out);
  }
};

}  // namespace json_internal

/// Parses one JSON document from `text` (trailing whitespace allowed,
/// trailing garbage rejected). Returns false on any syntax error or when
/// nesting exceeds a small hard limit — hostile input fails cleanly.
inline bool ParseJson(std::string_view text, JsonValue* out) {
  json_internal::Parser p{text};
  *out = JsonValue{};
  if (!p.ParseValue(out, 0)) return false;
  p.SkipWs();
  return p.pos == p.text.size();
}

/// Appends `s` as a quoted JSON string (escaping quotes, backslashes, and
/// control characters).
inline void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace neats::net
