// Blocking client for the neats wire protocol — the counterpart of
// src/net/server.hpp used by tests, tools, and the loadgen driver.
//
// Two layers:
//   - Typed calls (Access, AccessBatch, DecompressRange(s), RangeSum,
//     Size, Stats, Ping): one request, one response, errors rethrown as
//     neats::Error with the store's status taxonomy (WireStatusToCode —
//     an admission-gate shed surfaces as kUnavailable, exactly like a
//     quarantined shard would in-process).
//   - Raw SendRequest/ReadResponse for pipelining: keep several requests
//     in flight on one connection and match responses by id. This is what
//     the loadgen uses, and what makes the server's coalescing window
//     fill — a closed-loop one-at-a-time client never batches.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "core/neats.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace neats::net {

class Client {
 public:
  /// One decoded response frame.
  struct Response {
    Opcode op = Opcode::kPing;
    WireStatus status = WireStatus::kOk;
    uint64_t id = 0;
    std::vector<uint8_t> payload;

    /// Throws neats::Error when the status is not kOk (payload carries the
    /// server's message).
    void Require() const {
      if (status == WireStatus::kOk) return;
      std::string message(reinterpret_cast<const char*>(payload.data()),
                          payload.size());
      if (message.empty()) message = WireStatusName(status);
      throw Error("server: " + message, WireStatusToCode(status));
    }
  };

  /// Connects (blocking) to a running neats_server.
  static Client Connect(const std::string& host, uint16_t port) {
    return Client(ConnectTo(host, port));
  }

  Client(Client&& other) noexcept : fd_(other.fd_), next_id_(other.next_id_) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      next_id_ = other.next_id_;
      other.fd_ = -1;
    }
    return *this;
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client() { Close(); }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  int fd() const { return fd_; }

  // --- Typed surface (one request, one response) ---------------------------

  void Ping() { Call(Opcode::kPing, {}).Require(); }

  uint64_t Size() {
    Response r = Call(Opcode::kSize, {});
    r.Require();
    PayloadReader reader(r.payload);
    const uint64_t size = reader.U64();
    NEATS_REQUIRE(reader.ok() && reader.AtEnd(), "malformed size response");
    return size;
  }

  int64_t Access(uint64_t i) {
    std::vector<uint8_t> payload;
    PayloadWriter w(&payload);
    w.U64(i);
    Response r = Call(Opcode::kAccess, payload);
    r.Require();
    return DecodeValue(r);
  }

  std::vector<int64_t> AccessBatch(std::span<const uint64_t> idx) {
    std::vector<uint8_t> payload;
    PayloadWriter w(&payload);
    w.U32(static_cast<uint32_t>(idx.size()));
    for (uint64_t i : idx) w.U64(i);
    Response r = Call(Opcode::kAccessBatch, payload);
    r.Require();
    return DecodeValues(r, idx.size());
  }

  std::vector<int64_t> DecompressRange(uint64_t from, uint64_t len) {
    std::vector<uint8_t> payload;
    PayloadWriter w(&payload);
    w.U64(from);
    w.U64(len);
    Response r = Call(Opcode::kDecompressRange, payload);
    r.Require();
    return DecodeValues(r, len);
  }

  std::vector<int64_t> DecompressRanges(std::span<const IndexRange> ranges) {
    std::vector<uint8_t> payload;
    PayloadWriter w(&payload);
    w.U32(static_cast<uint32_t>(ranges.size()));
    uint64_t total = 0;
    for (const IndexRange& r : ranges) {
      w.U64(r.from);
      w.U64(r.len);
      total += r.len;
    }
    Response r = Call(Opcode::kDecompressRanges, payload);
    r.Require();
    return DecodeValues(r, total);
  }

  int64_t RangeSum(uint64_t from, uint64_t len) {
    std::vector<uint8_t> payload;
    PayloadWriter w(&payload);
    w.U64(from);
    w.U64(len);
    Response r = Call(Opcode::kRangeSum, payload);
    r.Require();
    return DecodeValue(r);
  }

  /// The server's stats document ({"server": ..., "store": ...} JSON).
  std::string Stats() {
    Response r = Call(Opcode::kStats, {});
    r.Require();
    return std::string(reinterpret_cast<const char*>(r.payload.data()),
                       r.payload.size());
  }

  // --- Raw surface (pipelining) --------------------------------------------

  /// Sends one request frame without waiting; returns its id.
  uint64_t SendRequest(Opcode op, std::span<const uint8_t> payload) {
    const uint64_t id = next_id_++;
    std::vector<uint8_t> frame;
    frame.reserve(kFrameHeaderBytes + payload.size());
    AppendFrame(&frame, op, 0, id, payload);
    SendAll(fd_, frame);
    return id;
  }

  /// Reads one response frame (blocking). Throws on connection loss, torn
  /// frames, or CRC mismatch — a client never trusts a damaged stream.
  Response ReadResponse() {
    uint8_t header[kFrameHeaderBytes];
    NEATS_REQUIRE(RecvAll(fd_, header),
                  "server closed the connection");
    FrameHeader h;
    NEATS_REQUIRE(DecodeFrameHeader(header, &h), "bad response magic");
    NEATS_REQUIRE(h.version == kProtocolVersion,
                  "unsupported response version");
    NEATS_REQUIRE(h.payload_len <= kMaxResponseBytes,
                  "response exceeds sanity bound");
    Response r;
    r.payload.resize(h.payload_len);
    if (h.payload_len > 0 && !RecvAll(fd_, r.payload)) {
      throw Error("connection closed mid-response", StatusCode::kIo);
    }
    NEATS_REQUIRE(VerifyFrameCrc(header, r.payload),
                  "response CRC mismatch");
    r.op = static_cast<Opcode>(h.opcode);
    r.status = static_cast<WireStatus>(h.status);
    r.id = h.id;
    return r;
  }

  /// One round trip.
  Response Call(Opcode op, std::span<const uint8_t> payload) {
    const uint64_t id = SendRequest(op, payload);
    Response r = ReadResponse();
    NEATS_REQUIRE(r.id == id, "response id mismatch on a serial call");
    return r;
  }

 private:
  static constexpr uint32_t kMaxResponseBytes = 1u << 30;

  explicit Client(int fd) : fd_(fd) {}

  static int64_t DecodeValue(const Response& r) {
    PayloadReader reader(r.payload);
    const int64_t v = reader.I64();
    NEATS_REQUIRE(reader.ok() && reader.AtEnd(), "malformed value response");
    return v;
  }

  static std::vector<int64_t> DecodeValues(const Response& r,
                                           size_t expect) {
    NEATS_REQUIRE(r.payload.size() == expect * 8,
                  "value-count mismatch in response");
    PayloadReader reader(r.payload);
    std::vector<int64_t> values;
    reader.I64Vec(expect, &values);
    NEATS_REQUIRE(reader.ok() && reader.AtEnd(), "malformed values response");
    return values;
  }

  int fd_ = -1;
  uint64_t next_id_ = 1;
};

}  // namespace neats::net
