// Thin POSIX TCP helpers shared by the server event loop and the blocking
// client: EINTR-looping send/recv, nonblocking mode, Nagle off (the
// protocol is request/response with small frames — coalescing is done
// above the socket, on purpose), and listener/connect construction with
// errno context on every failure. IPv4 only: the serving tier fronts the
// store on loopback or a private interface; anything fancier belongs in a
// real proxy.

#pragma once

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>

#include "common/assert.hpp"

namespace neats::net {

/// Throws a kIo neats::Error carrying `what` plus strerror(errno).
[[noreturn]] inline void ThrowErrno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno), StatusCode::kIo);
}

inline void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    ThrowErrno("fcntl(O_NONBLOCK)");
  }
}

inline void SetNoDelay(int fd) {
  const int one = 1;
  // Best-effort: a socketpair-backed test double may not speak TCP.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Parses "a.b.c.d" into a sockaddr_in with the given port.
inline sockaddr_in MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  NEATS_REQUIRE(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                "not an IPv4 address");
  return addr;
}

/// Creates, binds, and listens a TCP socket; returns the fd. With port 0
/// the kernel picks an ephemeral port — read it back with BoundPort().
inline int CreateListener(const std::string& host, uint16_t port,
                          int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) ThrowErrno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = MakeAddr(host, port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    ThrowErrno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, backlog) < 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    ThrowErrno("listen");
  }
  return fd;
}

/// The port a bound socket actually listens on.
inline uint16_t BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ThrowErrno("getsockname");
  }
  return ntohs(addr.sin_port);
}

/// Blocking connect; returns the connected fd.
inline int ConnectTo(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) ThrowErrno("socket");
  sockaddr_in addr = MakeAddr(host, port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    ThrowErrno("connect " + host + ":" + std::to_string(port));
  }
  SetNoDelay(fd);
  return fd;
}

/// Writes the whole span to a blocking socket (EINTR-looping).
inline void SendAll(int fd, std::span<const uint8_t> bytes) {
  size_t at = 0;
  while (at < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + at, bytes.size() - at, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("send");
    }
    at += static_cast<size_t>(n);
  }
}

/// Reads exactly bytes.size() bytes from a blocking socket. Returns false
/// on a clean EOF before the first byte; throws on errors and on EOF
/// mid-message (a torn response).
inline bool RecvAll(int fd, std::span<uint8_t> bytes) {
  size_t at = 0;
  while (at < bytes.size()) {
    const ssize_t n = ::recv(fd, bytes.data() + at, bytes.size() - at, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("recv");
    }
    if (n == 0) {
      if (at == 0) return false;
      throw Error("connection closed mid-message", StatusCode::kIo);
    }
    at += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace neats::net
